//! Simulator throughput measurement: requests/sec per scheme.
//!
//! The ROADMAP's north star is a simulator that runs "as fast as the
//! hardware allows"; every figure sweep is bound by `serve()` throughput.
//! This harness times [`run_experiment`](crate::config::run_experiment) per
//! scheme over a fixed workload
//! and reports requests per second, so each PR leaves a perf trajectory
//! (`BENCH_throughput.json`) behind.
//!
//! Timing uses the *fastest* of `repeats` runs per scheme — the minimum is
//! the standard noise-robust estimator for deterministic workloads.

use crate::config::{run_experiment_recorded, ExperimentConfig, SchemeKind};
use crate::error::SimError;
use crate::recorder::{NoopRecorder, Recorder};
use std::fmt::Write as _;
use std::time::Instant;
use webcache_workload::Trace;

/// One scheme's timing result.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Requests simulated per run (all traces interleaved).
    pub requests: u64,
    /// Wall-clock seconds of the fastest run.
    pub elapsed_secs: f64,
    /// `requests / elapsed_secs` of the fastest run.
    pub requests_per_sec: f64,
    /// Mean end-to-end latency of the simulated scheme (model time, not
    /// wall clock) — carried along so a perf regression that accidentally
    /// changes simulation output is visible right in the report.
    pub avg_latency: f64,
    /// Overall hit ratio of the simulated scheme.
    pub hit_ratio: f64,
}

/// A full throughput report: configuration + one point per scheme.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Configuration shared by every point (scheme field is ignored).
    pub base: ExperimentConfig,
    /// Requests per trace and trace count, for the record.
    pub trace_requests: usize,
    /// Number of proxy traces.
    pub num_traces: usize,
    /// Timed runs per scheme (fastest wins).
    pub repeats: usize,
    /// Per-scheme results, in measurement order.
    pub points: Vec<ThroughputPoint>,
}

/// Times `run_experiment` for each scheme in `schemes` over `traces`.
///
/// Every scheme runs `repeats` times (minimum 1); the fastest run is
/// reported. The simulation itself is deterministic, so metrics are taken
/// from the first run.
pub fn measure_throughput(
    schemes: &[SchemeKind],
    base: &ExperimentConfig,
    traces: &[Trace],
    repeats: usize,
) -> Result<ThroughputReport, SimError> {
    measure_throughput_recorded(schemes, base, traces, repeats, NoopRecorder)
}

/// [`measure_throughput`] with a [`Recorder`] attached to every timed
/// run. Use this to quantify the recorder's own overhead: compare
/// against a [`NoopRecorder`] baseline from [`measure_throughput`].
pub fn measure_throughput_recorded<R: Recorder + Clone + 'static>(
    schemes: &[SchemeKind],
    base: &ExperimentConfig,
    traces: &[Trace],
    repeats: usize,
    recorder: R,
) -> Result<ThroughputReport, SimError> {
    let repeats = repeats.max(1);
    let mut points = Vec::with_capacity(schemes.len());
    for &scheme in schemes {
        let cfg = base.at(scheme, base.cache_frac);
        let mut best = f64::INFINITY;
        let mut metrics = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let m = run_experiment_recorded(&cfg, traces, recorder.clone())?;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed < best {
                best = elapsed;
            }
            metrics.get_or_insert(m);
        }
        let m = metrics.expect("at least one run");
        points.push(ThroughputPoint {
            scheme,
            requests: m.requests,
            elapsed_secs: best,
            requests_per_sec: if best > 0.0 { m.requests as f64 / best } else { f64::INFINITY },
            avg_latency: m.avg_latency(),
            hit_ratio: m.hit_ratio(),
        });
    }
    Ok(ThroughputReport {
        base: *base,
        trace_requests: traces.first().map_or(0, |t| t.len()),
        num_traces: traces.len(),
        repeats,
        points,
    })
}

impl ThroughputReport {
    /// Renders the report as the `BENCH_throughput.json` document.
    ///
    /// Hand-rolled JSON: the offline build environment has no serde_json,
    /// and the format is small and fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        writeln!(
            s,
            "  \"config\": {{\"num_proxies\": {}, \"cache_frac\": {}, \
             \"clients_per_cluster\": {}, \"per_client_frac\": {}, \
             \"trace_requests\": {}, \"num_traces\": {}, \"repeats\": {}}},",
            self.base.num_proxies,
            self.base.cache_frac,
            self.base.clients_per_cluster,
            self.base.per_client_frac,
            self.trace_requests,
            self.num_traces,
            self.repeats
        )
        .unwrap();
        s.push_str("  \"schemes\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            writeln!(
                s,
                "    {{\"scheme\": \"{}\", \"requests\": {}, \"elapsed_secs\": {:.6}, \
                 \"requests_per_sec\": {:.0}, \"avg_latency\": {:.4}, \"hit_ratio\": {:.4}}}{}",
                p.scheme.label(),
                p.requests,
                p.elapsed_secs,
                p.requests_per_sec,
                p.avg_latency,
                p.hit_ratio,
                if i + 1 == self.points.len() { "" } else { "," }
            )
            .unwrap();
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders an aligned text table for terminals.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "{:<8} {:>12} {:>12} {:>14} {:>12} {:>10}",
            "scheme", "requests", "elapsed(s)", "req/s", "avg-latency", "hit-ratio"
        )
        .unwrap();
        for p in &self.points {
            writeln!(
                s,
                "{:<8} {:>12} {:>12.4} {:>14.0} {:>12.4} {:>10.4}",
                p.scheme.label(),
                p.requests,
                p.elapsed_secs,
                p.requests_per_sec,
                p.avg_latency,
                p.hit_ratio
            )
            .unwrap();
        }
        s
    }

    /// The point for `scheme`, if measured.
    pub fn point(&self, scheme: SchemeKind) -> Option<&ThroughputPoint> {
        self.points.iter().find(|p| p.scheme == scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_workload::{ProWGen, ProWGenConfig};

    fn tiny_traces() -> Vec<Trace> {
        (0..2)
            .map(|p| {
                ProWGen::new(ProWGenConfig {
                    requests: 2_000,
                    distinct_objects: 200,
                    num_clients: 10,
                    seed: 9 + p,
                    ..ProWGenConfig::default()
                })
                .generate()
            })
            .collect()
    }

    #[test]
    fn measures_all_requested_schemes() {
        let ts = tiny_traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 10;
        let report =
            measure_throughput(&[SchemeKind::Nc, SchemeKind::HierGd], &base, &ts, 1).unwrap();
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert_eq!(p.requests, 4_000);
            assert!(p.requests_per_sec > 0.0);
            assert!(p.elapsed_secs >= 0.0);
            assert!((0.0..=1.0).contains(&p.hit_ratio));
        }
        assert!(report.point(SchemeKind::HierGd).is_some());
        assert!(report.point(SchemeKind::Fc).is_none());
    }

    #[test]
    fn json_and_table_render() {
        let ts = tiny_traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 10;
        let report = measure_throughput(&[SchemeKind::Nc], &base, &ts, 2).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schemes\": ["));
        assert!(json.contains("\"scheme\": \"NC\""));
        assert!(json.contains("\"requests_per_sec\""));
        assert!(json.ends_with("}\n"));
        let table = report.to_table();
        assert!(table.contains("req/s"));
        assert!(table.contains("NC"));
    }
}
