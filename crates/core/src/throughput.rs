//! Simulator throughput measurement: requests/sec per scheme.
//!
//! The ROADMAP's north star is a simulator that runs "as fast as the
//! hardware allows"; every figure sweep is bound by `serve()` throughput.
//! This harness times [`run_experiment`](crate::config::run_experiment) per
//! scheme over a fixed workload
//! and reports requests per second, so each PR leaves a perf trajectory
//! (`BENCH_throughput.json`) behind.
//!
//! Timing uses the *fastest* of `repeats` runs per scheme — the minimum is
//! the standard noise-robust estimator for deterministic workloads.
//!
//! Two accounting views are reported per scheme:
//!
//! * `requests_per_sec` — the serve path alone: engines are built
//!   *outside* the timed region (construction is identical setup work for
//!   every scheme and PR, and the figures sweep amortizes it over ten
//!   grid points per engine shape), so this number tracks single-thread
//!   `serve()` wins and nothing else.
//! * `requests_per_sec_per_core` — all `repeats` runs (builds included)
//!   divided by the batch wall-clock and by the pool's thread count. On
//!   one thread this is a slightly conservative echo of the first number;
//!   on N threads it shows how much of the serve-path speed parallelism
//!   actually delivers per core. A perf PR must improve the first number
//!   to claim a single-thread win; moving only the second is a
//!   parallelism win.
//!
//! When the global pool (see `vendor/rayon`) has more than one thread,
//! the repeats themselves run in parallel — each repeat builds its own
//! engine from the same config, so outputs stay byte-identical.

use crate::clock::SimClock;
use crate::config::{build_engine_recorded, ExperimentConfig, SchemeKind};
use crate::engine::Engine;
use crate::error::SimError;
use crate::metrics::RunMetrics;
use crate::recorder::{NoopRecorder, Recorder};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;
use webcache_workload::Trace;

/// One scheme's timing result.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Requests simulated per run (all traces interleaved).
    pub requests: u64,
    /// Wall-clock seconds of the fastest serve run (engine construction
    /// excluded — see the module docs).
    pub elapsed_secs: f64,
    /// `requests / elapsed_secs` of the fastest serve run.
    pub requests_per_sec: f64,
    /// Wall-clock seconds for all `repeats` runs, engine builds included
    /// (the repeats run in parallel when the pool has >1 thread).
    pub batch_secs: f64,
    /// `requests * repeats / batch_secs / threads`: end-to-end throughput
    /// normalized by the cores used.
    pub requests_per_sec_per_core: f64,
    /// Mean end-to-end latency of the simulated scheme (model time, not
    /// wall clock) — carried along so a perf regression that accidentally
    /// changes simulation output is visible right in the report.
    pub avg_latency: f64,
    /// Overall hit ratio of the simulated scheme.
    pub hit_ratio: f64,
}

/// A full throughput report: configuration + one point per scheme.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Configuration shared by every point (scheme field is ignored).
    pub base: ExperimentConfig,
    /// Requests per trace and trace count, for the record.
    pub trace_requests: usize,
    /// Number of proxy traces.
    pub num_traces: usize,
    /// Timed runs per scheme (fastest wins).
    pub repeats: usize,
    /// Worker threads in the global pool during the measurement
    /// (`WEBCACHE_THREADS` or the core count; 1 means fully serial).
    pub threads: usize,
    /// Per-scheme results, in measurement order.
    pub points: Vec<ThroughputPoint>,
}

/// Times `run_experiment` for each scheme in `schemes` over `traces`.
///
/// Every scheme runs `repeats` times (minimum 1); the fastest run is
/// reported. The simulation itself is deterministic, so metrics are taken
/// from the first run.
pub fn measure_throughput(
    schemes: &[SchemeKind],
    base: &ExperimentConfig,
    traces: &[Trace],
    repeats: usize,
) -> Result<ThroughputReport, SimError> {
    measure_throughput_recorded(schemes, base, traces, repeats, NoopRecorder)
}

/// [`measure_throughput`] with a [`Recorder`] attached to every timed
/// run. Use this to quantify the recorder's own overhead: compare
/// against a [`NoopRecorder`] baseline from [`measure_throughput`].
pub fn measure_throughput_recorded<R: Recorder + Clone + 'static>(
    schemes: &[SchemeKind],
    base: &ExperimentConfig,
    traces: &[Trace],
    repeats: usize,
    recorder: R,
) -> Result<ThroughputReport, SimError> {
    let repeats = repeats.max(1);
    let threads = rayon::current_num_threads();
    let mut points = Vec::with_capacity(schemes.len());
    for &scheme in schemes {
        let cfg = base.at(scheme, base.cache_frac);
        // Surface every error the per-repeat closures could hit *before*
        // the (possibly parallel) region, so they are infallible inside.
        cfg.validate()?;
        if traces.len() != cfg.num_proxies {
            return Err(SimError::TraceCountMismatch {
                traces: traces.len(),
                proxies: cfg.num_proxies,
            });
        }
        // One repeat: build a pristine engine (untimed — the serve path
        // is what is being measured), then time the run alone.
        let one_repeat = |_r: usize| -> (f64, RunMetrics) {
            let mut engine =
                build_engine_recorded(&cfg, traces, recorder.clone()).expect("validated above");
            // The clock is built outside the timed region: it is identical
            // setup work for every scheme, and the serve path is what is
            // being measured.
            let mut clock = SimClock::new(cfg.clock);
            let start = Instant::now();
            let m = Engine::new(engine.as_mut(), traces, &cfg.net).run(&mut clock, &recorder);
            (start.elapsed().as_secs_f64(), m)
        };
        let batch_start = Instant::now();
        let runs: Vec<(f64, RunMetrics)> = if threads > 1 && repeats > 1 {
            (0..repeats).collect::<Vec<_>>().into_par_iter().map(one_repeat).collect()
        } else {
            (0..repeats).map(one_repeat).collect()
        };
        let batch_secs = batch_start.elapsed().as_secs_f64();
        let best = runs.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
        // The simulation is deterministic: every repeat produced the same
        // metrics, so take the first.
        let m = runs.into_iter().next().expect("repeats >= 1").1;
        let total = m.requests as f64 * repeats as f64;
        points.push(ThroughputPoint {
            scheme,
            requests: m.requests,
            elapsed_secs: best,
            requests_per_sec: if best > 0.0 { m.requests as f64 / best } else { f64::INFINITY },
            batch_secs,
            requests_per_sec_per_core: if batch_secs > 0.0 {
                total / batch_secs / threads as f64
            } else {
                f64::INFINITY
            },
            avg_latency: m.avg_latency(),
            hit_ratio: m.hit_ratio(),
        });
    }
    Ok(ThroughputReport {
        base: *base,
        trace_requests: traces.first().map_or(0, |t| t.len()),
        num_traces: traces.len(),
        repeats,
        threads,
        points,
    })
}

impl ThroughputReport {
    /// Renders the report as the `BENCH_throughput.json` document.
    ///
    /// Hand-rolled JSON: the offline build environment has no serde_json,
    /// and the format is small and fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        writeln!(
            s,
            "  \"config\": {{\"num_proxies\": {}, \"cache_frac\": {}, \
             \"clients_per_cluster\": {}, \"per_client_frac\": {}, \
             \"trace_requests\": {}, \"num_traces\": {}, \"repeats\": {}, \
             \"threads\": {}}},",
            self.base.num_proxies,
            self.base.cache_frac,
            self.base.clients_per_cluster,
            self.base.per_client_frac,
            self.trace_requests,
            self.num_traces,
            self.repeats,
            self.threads
        )
        .unwrap();
        s.push_str("  \"schemes\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            writeln!(
                s,
                "    {{\"scheme\": \"{}\", \"requests\": {}, \"elapsed_secs\": {:.6}, \
                 \"requests_per_sec\": {:.0}, \"batch_secs\": {:.6}, \
                 \"requests_per_sec_per_core\": {:.0}, \
                 \"avg_latency\": {:.4}, \"hit_ratio\": {:.4}}}{}",
                p.scheme.label(),
                p.requests,
                p.elapsed_secs,
                p.requests_per_sec,
                p.batch_secs,
                p.requests_per_sec_per_core,
                p.avg_latency,
                p.hit_ratio,
                if i + 1 == self.points.len() { "" } else { "," }
            )
            .unwrap();
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders an aligned text table for terminals.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "{:<8} {:>12} {:>12} {:>14} {:>14} {:>12} {:>10}",
            "scheme", "requests", "elapsed(s)", "req/s", "req/s/core", "avg-latency", "hit-ratio"
        )
        .unwrap();
        for p in &self.points {
            writeln!(
                s,
                "{:<8} {:>12} {:>12.4} {:>14.0} {:>14.0} {:>12.4} {:>10.4}",
                p.scheme.label(),
                p.requests,
                p.elapsed_secs,
                p.requests_per_sec,
                p.requests_per_sec_per_core,
                p.avg_latency,
                p.hit_ratio
            )
            .unwrap();
        }
        writeln!(
            s,
            "({} thread{} in pool)",
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )
        .unwrap();
        s
    }

    /// The point for `scheme`, if measured.
    pub fn point(&self, scheme: SchemeKind) -> Option<&ThroughputPoint> {
        self.points.iter().find(|p| p.scheme == scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_workload::{ProWGen, ProWGenConfig};

    fn tiny_traces() -> Vec<Trace> {
        (0..2)
            .map(|p| {
                ProWGen::new(ProWGenConfig {
                    requests: 2_000,
                    distinct_objects: 200,
                    num_clients: 10,
                    seed: 9 + p,
                    ..ProWGenConfig::default()
                })
                .generate()
            })
            .collect()
    }

    #[test]
    fn measures_all_requested_schemes() {
        let ts = tiny_traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 10;
        let report =
            measure_throughput(&[SchemeKind::Nc, SchemeKind::HierGd], &base, &ts, 1).unwrap();
        assert_eq!(report.points.len(), 2);
        assert!(report.threads >= 1);
        for p in &report.points {
            assert_eq!(p.requests, 4_000);
            assert!(p.requests_per_sec > 0.0);
            assert!(p.requests_per_sec_per_core > 0.0);
            assert!(p.elapsed_secs >= 0.0);
            assert!(p.batch_secs >= p.elapsed_secs);
            assert!((0.0..=1.0).contains(&p.hit_ratio));
        }
        assert!(report.point(SchemeKind::HierGd).is_some());
        assert!(report.point(SchemeKind::Fc).is_none());
    }

    #[test]
    fn json_and_table_render() {
        let ts = tiny_traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 10;
        let report = measure_throughput(&[SchemeKind::Nc], &base, &ts, 2).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schemes\": ["));
        assert!(json.contains("\"scheme\": \"NC\""));
        assert!(json.contains("\"requests_per_sec\""));
        assert!(json.contains("\"requests_per_sec_per_core\""));
        assert!(json.contains("\"threads\""));
        assert!(json.ends_with("}\n"));
        let table = report.to_table();
        assert!(table.contains("req/s"));
        assert!(table.contains("NC"));
    }
}
