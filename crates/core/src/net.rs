//! The paper's network latency model (§5.1).
//!
//! Four parameters describe the topology: `Ts` (proxy → Web server), `Tc`
//! (proxy → cooperating proxy), `Tl` (client → local proxy) and `Tp2p`
//! (client or proxy → P2P client cache). Defaults follow the paper:
//! `Ts/Tc = 10`, `Ts/Tl = 20`, `Tp2p/Tl = 1.4`; Figure 5(a)/(b) sweep the
//! first two ratios.
//!
//! Request latencies compose additively along the fetch path, which yields
//! the ordering the paper assumes (§5.1 assumption 3):
//! local proxy < own P2P cache < cooperating proxy < cooperating proxy's
//! P2P cache < origin server.

use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Where a request was ultimately served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitClass {
    /// Hit in the client's local proxy cache.
    LocalProxy,
    /// Hit in the local proxy's own P2P client cache.
    OwnP2p,
    /// Hit in a cooperating proxy's cache.
    CoopProxy,
    /// Hit in a cooperating proxy's P2P client cache (push protocol).
    CoopP2p,
    /// Fetched from the origin Web server.
    Server,
}

impl HitClass {
    /// All classes, for iteration in reports.
    pub const ALL: [HitClass; 5] = [
        HitClass::LocalProxy,
        HitClass::OwnP2p,
        HitClass::CoopProxy,
        HitClass::CoopP2p,
        HitClass::Server,
    ];

    /// Dense index of this class (0..[`HitClass::ALL`]`.len()`), for
    /// array-backed per-class counters.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            HitClass::LocalProxy => "proxy",
            HitClass::OwnP2p => "own-p2p",
            HitClass::CoopProxy => "coop-proxy",
            HitClass::CoopP2p => "coop-p2p",
            HitClass::Server => "server",
        }
    }
}

/// Latency pricing for a simulated fetch path.
///
/// The engine and every scheme price requests through this trait, so
/// [`NetworkModel`] — the paper's four-parameter uniform topology — is
/// one implementation rather than a hard-coded dependency. Non-uniform
/// topologies implement it too (see [`ExplicitLatency`]): under
/// [`ClockMode::Event`](crate::clock::ClockMode::Event) a different
/// latency table genuinely reshapes the event schedule instead of just
/// rescaling totals.
pub trait LatencyModel: Sync {
    /// End-to-end client latency for a request served from `class`.
    fn latency(&self, class: HitClass) -> f64;

    /// The *proxy-side re-fetch cost* of an object available from
    /// `class` — what greedy-dual and cost-benefit charge for
    /// (re)acquiring it. Client→proxy latency is excluded: it is paid on
    /// every request regardless of where the object comes from.
    fn fetch_cost(&self, class: HitClass) -> f64;

    /// Detection-timeout penalty charged per stalled protocol message
    /// (crashed peers, lost messages, slow machines).
    fn t_timeout(&self) -> f64;
}

impl LatencyModel for NetworkModel {
    fn latency(&self, class: HitClass) -> f64 {
        NetworkModel::latency(self, class)
    }

    fn fetch_cost(&self, class: HitClass) -> f64 {
        NetworkModel::fetch_cost(self, class)
    }

    fn t_timeout(&self) -> f64 {
        self.t_timeout
    }
}

/// A free-form per-class latency table: the simplest non-uniform
/// topology. Unlike [`NetworkModel`], the five classes need not compose
/// additively from four link parameters — e.g. a far-away origin with a
/// fast co-located cooperating proxy, the shape Wang et al. show
/// dominates cooperation-policy effects.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExplicitLatency {
    /// End-to-end latency per class, indexed by [`HitClass::index`].
    pub latencies: [f64; HitClass::ALL.len()],
    /// Proxy-side re-fetch cost per class, indexed by
    /// [`HitClass::index`].
    pub fetch_costs: [f64; HitClass::ALL.len()],
    /// Detection-timeout penalty per stalled message.
    pub timeout: f64,
}

impl ExplicitLatency {
    /// Tabulates `model` into an explicit per-class table (a starting
    /// point to then skew individual classes).
    pub fn from_model(model: &dyn LatencyModel) -> Self {
        let mut latencies = [0.0; HitClass::ALL.len()];
        let mut fetch_costs = [0.0; HitClass::ALL.len()];
        for class in HitClass::ALL {
            latencies[class.index()] = model.latency(class);
            fetch_costs[class.index()] = model.fetch_cost(class);
        }
        ExplicitLatency { latencies, fetch_costs, timeout: model.t_timeout() }
    }
}

impl LatencyModel for ExplicitLatency {
    fn latency(&self, class: HitClass) -> f64 {
        self.latencies[class.index()]
    }

    fn fetch_cost(&self, class: HitClass) -> f64 {
        self.fetch_costs[class.index()]
    }

    fn t_timeout(&self) -> f64 {
        self.timeout
    }
}

/// Latency parameters, in arbitrary units (only ratios matter for the
/// latency-gain metric).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Proxy → origin server average latency.
    pub ts: f64,
    /// Proxy → cooperating proxy average latency.
    pub tc: f64,
    /// Client → local proxy average latency.
    pub tl: f64,
    /// Client/proxy → P2P client cache average latency.
    pub tp2p: f64,
    /// Timeout penalty paid when a message walks into a crashed node, is
    /// lost on the wire, or stalls on a slow machine (churn experiments
    /// only; the fault-free cascade never charges it).
    ///
    /// The unreliable transport prices its recovery machinery in the
    /// same unit: every failed delivery attempt (loss or checksum
    /// rejection) charges one `t_timeout`, exponential-backoff waits and
    /// reorder-resequencing stalls charge one per backoff unit. So a
    /// destage that succeeds on its third attempt costs
    /// `2·t_timeout + backoff` on top of its normal hop latency.
    pub t_timeout: f64,
}

impl Default for NetworkModel {
    /// The paper's default ratios with `Tl = 1`.
    fn default() -> Self {
        NetworkModel::from_ratios(10.0, 20.0, 1.4)
    }
}

impl NetworkModel {
    /// Builds a model from the paper's ratio parameterization:
    /// `Ts/Tc`, `Ts/Tl` and `Tp2p/Tl`, normalized to `Tl = 1`.
    ///
    /// # Panics
    /// Panics on non-positive ratios.
    pub fn from_ratios(ts_over_tc: f64, ts_over_tl: f64, tp2p_over_tl: f64) -> Self {
        assert!(
            ts_over_tc > 0.0 && ts_over_tl > 0.0 && tp2p_over_tl > 0.0,
            "ratios must be positive"
        );
        let tl = 1.0;
        let ts = ts_over_tl * tl;
        let tc = ts / ts_over_tc;
        let tp2p = tp2p_over_tl * tl;
        // The 4× rule and its rationale live on
        // `webcache_primitives::TIMEOUT_RTT_MULTIPLE` — the single source
        // of truth shared with the transport and churn layers.
        NetworkModel {
            ts,
            tc,
            tl,
            tp2p,
            t_timeout: webcache_primitives::TIMEOUT_RTT_MULTIPLE * tp2p,
        }
    }

    /// This model with every latency (including the timeout penalty)
    /// scaled by `factor`. Ratios — the paper's parameterization — are
    /// unchanged. The overload sweep runs on a scaled-down model: under
    /// the event clock a request occupies the proxy for its full priced
    /// latency, so the nominal one-request-per-round arrival rate only
    /// has service headroom (a stable baseline queue for a flash crowd
    /// to overload) when latencies sit well below one round.
    ///
    /// # Panics
    /// Panics on a non-positive factor.
    pub fn scaled(&self, factor: f64) -> NetworkModel {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        NetworkModel {
            ts: self.ts * factor,
            tc: self.tc * factor,
            tl: self.tl * factor,
            tp2p: self.tp2p * factor,
            t_timeout: self.t_timeout * factor,
        }
    }

    /// End-to-end client latency for a request served from `class`.
    pub fn latency(&self, class: HitClass) -> f64 {
        match class {
            HitClass::LocalProxy => self.tl,
            HitClass::OwnP2p => self.tl + self.tp2p,
            HitClass::CoopProxy => self.tl + self.tc,
            HitClass::CoopP2p => self.tl + self.tc + self.tp2p,
            HitClass::Server => self.tl + self.ts,
        }
    }

    /// The *proxy-side re-fetch cost* of an object available from `class`
    /// — what greedy-dual and cost-benefit charge for (re)acquiring it.
    /// Client→proxy latency is excluded: it is paid on every request
    /// regardless of where the object comes from.
    pub fn fetch_cost(&self, class: HitClass) -> f64 {
        match class {
            HitClass::LocalProxy => 0.0,
            HitClass::OwnP2p => self.tp2p,
            HitClass::CoopProxy => self.tc,
            HitClass::CoopP2p => self.tc + self.tp2p,
            HitClass::Server => self.ts,
        }
    }

    /// Validates the model: all latencies positive and finite, and the
    /// server the most expensive source (anything else would make caching
    /// pointless). The *full* §5.1 ordering (proxy < own P2P < coop proxy
    /// < coop P2P < server) holds for the paper's defaults — checked by
    /// [`NetworkModel::ordering_violations`] — but legitimately flips
    /// between own-P2P and coop-proxy at the extreme ratios Figure 5
    /// sweeps (e.g. Ts/Tl = 5 with Ts/Tc = 10 makes Tc < Tp2p); schemes
    /// keep the paper's fixed lookup cascade regardless.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [
            ("ts", self.ts),
            ("tc", self.tc),
            ("tl", self.tl),
            ("tp2p", self.tp2p),
            ("t_timeout", self.t_timeout),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(SimError::InvalidConfig(format!(
                    "{name} must be positive and finite (got {v})"
                )));
            }
        }
        if self.ts <= self.tc || self.ts <= self.tp2p {
            return Err(SimError::InvalidConfig(
                "the origin server must be the most expensive source".into(),
            ));
        }
        Ok(())
    }

    /// Pairs of hit classes whose §5.1 latency ordering is violated.
    pub fn ordering_violations(&self) -> Vec<(HitClass, HitClass)> {
        HitClass::ALL
            .windows(2)
            .filter(|w| self.latency(w[0]) >= self.latency(w[1]))
            .map(|w| (w[0], w[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_ratios() {
        let n = NetworkModel::default();
        assert!((n.ts / n.tc - 10.0).abs() < 1e-12);
        assert!((n.ts / n.tl - 20.0).abs() < 1e-12);
        assert!((n.tp2p / n.tl - 1.4).abs() < 1e-12);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn default_model_satisfies_full_ordering() {
        assert!(NetworkModel::default().ordering_violations().is_empty());
    }

    #[test]
    fn latency_models_valid_for_paper_sweeps() {
        // Every combination swept in Figure 5(a)/(b) must be usable; the
        // full ordering may flip between own-P2P and coop-proxy at the
        // extremes (documented on `validate`), never elsewhere.
        for ts_tc in [2.0, 5.0, 10.0] {
            for ts_tl in [5.0, 10.0, 20.0] {
                let n = NetworkModel::from_ratios(ts_tc, ts_tl, 1.4);
                assert!(n.validate().is_ok(), "ts/tc={ts_tc}, ts/tl={ts_tl}: {n:?}");
                for (a, b) in n.ordering_violations() {
                    assert!(
                        matches!(
                            (a, b),
                            (HitClass::OwnP2p, HitClass::CoopProxy)
                                | (HitClass::CoopProxy, HitClass::CoopP2p)
                        ),
                        "unexpected ordering violation {a:?} >= {b:?} at ts/tc={ts_tc}, ts/tl={ts_tl}"
                    );
                }
            }
        }
    }

    #[test]
    fn latencies_compose_additively() {
        let n = NetworkModel::default();
        assert_eq!(n.latency(HitClass::LocalProxy), n.tl);
        assert_eq!(n.latency(HitClass::OwnP2p), n.tl + n.tp2p);
        assert_eq!(n.latency(HitClass::CoopProxy), n.tl + n.tc);
        assert_eq!(n.latency(HitClass::CoopP2p), n.tl + n.tc + n.tp2p);
        assert_eq!(n.latency(HitClass::Server), n.tl + n.ts);
    }

    #[test]
    fn fetch_cost_excludes_client_leg() {
        let n = NetworkModel::default();
        assert_eq!(n.fetch_cost(HitClass::LocalProxy), 0.0);
        assert_eq!(n.fetch_cost(HitClass::Server), n.ts);
        assert!(n.fetch_cost(HitClass::CoopProxy) < n.fetch_cost(HitClass::Server));
    }

    #[test]
    #[should_panic(expected = "ratios must be positive")]
    fn rejects_bad_ratios() {
        let _ = NetworkModel::from_ratios(0.0, 20.0, 1.4);
    }

    #[test]
    fn validation_catches_inverted_order() {
        let n = NetworkModel { ts: 1.0, tc: 5.0, tl: 1.0, tp2p: 1.0, t_timeout: 4.0 };
        assert!(n.validate().is_err());
    }

    #[test]
    fn explicit_table_matches_the_model_it_was_built_from() {
        let n = NetworkModel::default();
        let table = ExplicitLatency::from_model(&n);
        for class in HitClass::ALL {
            assert_eq!(LatencyModel::latency(&table, class), n.latency(class));
            assert_eq!(LatencyModel::fetch_cost(&table, class), n.fetch_cost(class));
        }
        assert_eq!(LatencyModel::t_timeout(&table), n.t_timeout);
    }

    #[test]
    fn explicit_table_supports_non_additive_topologies() {
        // A co-located cooperating proxy that is *cheaper* than the own
        // P2P tier — impossible to express with NetworkModel's additive
        // composition, trivial here.
        let mut table = ExplicitLatency::from_model(&NetworkModel::default());
        table.latencies[HitClass::CoopProxy.index()] = 1.1;
        assert!(
            LatencyModel::latency(&table, HitClass::CoopProxy)
                < LatencyModel::latency(&table, HitClass::OwnP2p)
        );
    }

    #[test]
    fn timeout_penalty_sits_between_coop_and_server() {
        let n = NetworkModel::default();
        assert!((n.t_timeout - 4.0 * n.tp2p).abs() < 1e-12);
        assert!(n.t_timeout > n.tp2p && n.t_timeout < n.ts);
    }
}
