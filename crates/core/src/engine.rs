//! The trace-driven simulation loop.
//!
//! Every caching scheme implements [`SchemeEngine`]; the driver interleaves
//! the per-proxy traces round-robin (the clusters issue requests
//! concurrently at statistically identical rates — §5.1 assumption 2) and
//! aggregates latencies into [`RunMetrics`].

use crate::metrics::RunMetrics;
use crate::net::{HitClass, NetworkModel};
use crate::recorder::{NoopRecorder, Recorder};
use webcache_workload::{Request, Trace};

/// A caching scheme under simulation.
pub trait SchemeEngine {
    /// Serves one request arriving at `proxy`'s cluster; returns where it
    /// was served from. The engine applies all cache-state side effects.
    fn serve(&mut self, proxy: usize, request: &Request) -> HitClass;

    /// End-to-end latency of a request served from `class`. The default
    /// is the paper's proxy-architecture path model; engines with a
    /// different architecture (e.g. the proxy-less Squirrel baseline)
    /// override it.
    fn latency_of(&self, net: &NetworkModel, class: HitClass) -> f64 {
        net.latency(class)
    }

    /// Batched lookup hook: called before a wave of requests is served to
    /// `proxy`'s cluster, letting the engine pre-resolve the DHT state the
    /// wave will probe (grouped by responsible node) instead of paying one
    /// lookup round-trip at a time. Must be a pure warm-up: serving the
    /// wave afterwards has to produce byte-identical metrics and message
    /// charges whether or not this was called. Default: no-op.
    fn prepare_wave(&mut self, _proxy: usize, _wave: &[Request]) {}

    /// Called once after the trace is exhausted, e.g. to merge message
    /// ledgers into the metrics.
    fn finish(&mut self, _metrics: &mut RunMetrics) {}

    /// Scheme label for reports.
    fn name(&self) -> &'static str;
}

/// Requests per [`SchemeEngine::prepare_wave`] batch. The wave models the
/// lookahead a proxy gets from its accept queue: big enough to amortize
/// per-node batching, small enough that the warmed state is still current
/// when the wave is served.
const WAVE: usize = 1024;

/// Runs `engine` over one trace per proxy, interleaved round-robin.
///
/// # Panics
/// Panics if `traces` is empty.
pub fn run_engine<E: SchemeEngine + ?Sized>(
    engine: &mut E,
    traces: &[Trace],
    net: &NetworkModel,
) -> RunMetrics {
    run_engine_recorded(engine, traces, net, &NoopRecorder)
}

/// [`run_engine`] with a [`Recorder`] observing every served request
/// (hit class + end-to-end latency).
///
/// With the default [`NoopRecorder`] the emission is compiled out and
/// this is exactly `run_engine`. P2P-layer events are *not* emitted here
/// — engines that have them (Hier-GD) carry their own recorder.
///
/// # Panics
/// Panics if `traces` is empty.
pub fn run_engine_recorded<E: SchemeEngine + ?Sized, R: Recorder>(
    engine: &mut E,
    traces: &[Trace],
    net: &NetworkModel,
    recorder: &R,
) -> RunMetrics {
    assert!(!traces.is_empty(), "need at least one proxy trace");
    let mut metrics = RunMetrics::default();
    let mut cursors = vec![0usize; traces.len()];
    let mut live = traces.len();
    while live > 0 {
        live = 0;
        for (p, trace) in traces.iter().enumerate() {
            if let Some(req) = trace.requests.get(cursors[p]) {
                if cursors[p].is_multiple_of(WAVE) {
                    let wave =
                        &trace.requests[cursors[p]..trace.requests.len().min(cursors[p] + WAVE)];
                    engine.prepare_wave(p, wave);
                }
                cursors[p] += 1;
                if cursors[p] < trace.requests.len() {
                    live += 1;
                }
                let class = engine.serve(p, req);
                let latency = engine.latency_of(net, class);
                metrics.record(class, latency);
                if R::ENABLED {
                    recorder.request(p, class, latency);
                }
            }
        }
        // `live` counts proxies with requests left *after* this round; the
        // loop above also handles the final request of each trace.
        if cursors.iter().zip(traces).all(|(&c, t)| c >= t.requests.len()) {
            break;
        }
    }
    engine.finish(&mut metrics);
    metrics
}

/// A do-nothing engine: every request goes to the server. Used by tests
/// as the floor any real scheme must beat.
pub struct NoCacheEngine;

impl SchemeEngine for NoCacheEngine {
    fn serve(&mut self, _proxy: usize, _request: &Request) -> HitClass {
        HitClass::Server
    }

    fn name(&self) -> &'static str {
        "no-cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_workload::Request;

    fn trace(objects: &[u32]) -> Trace {
        Trace::new(objects.iter().map(|&o| Request { client: 0, object: o, size: 1 }).collect())
    }

    /// Records the (proxy, object) order it is driven in.
    struct Probe(Vec<(usize, u32)>);

    impl SchemeEngine for Probe {
        fn serve(&mut self, proxy: usize, request: &Request) -> HitClass {
            self.0.push((proxy, request.object));
            HitClass::Server
        }
        fn name(&self) -> &'static str {
            "probe"
        }
    }

    #[test]
    fn all_requests_served_exactly_once() {
        let traces = vec![trace(&[1, 2, 3]), trace(&[4, 5])];
        let mut e = Probe(Vec::new());
        let m = run_engine(&mut e, &traces, &NetworkModel::default());
        assert_eq!(m.requests, 5);
        assert_eq!(e.0.len(), 5);
        // Round-robin interleave: p0,p1,p0,p1,p0.
        assert_eq!(e.0, vec![(0, 1), (1, 4), (0, 2), (1, 5), (0, 3)]);
    }

    #[test]
    fn uneven_traces_drain_fully() {
        let traces = vec![trace(&[1]), trace(&[2, 3, 4, 5])];
        let m = run_engine(&mut Probe(Vec::new()), &traces, &NetworkModel::default());
        assert_eq!(m.requests, 5);
    }

    #[test]
    fn empty_trace_is_fine() {
        let traces = vec![trace(&[]), trace(&[1])];
        let m = run_engine(&mut Probe(Vec::new()), &traces, &NetworkModel::default());
        assert_eq!(m.requests, 1);
    }

    #[test]
    fn recorded_run_sees_every_request() {
        use crate::recorder::StatsRecorder;
        let traces = vec![trace(&[1, 2, 3]), trace(&[4, 5])];
        let rec = StatsRecorder::new();
        let m =
            run_engine_recorded(&mut Probe(Vec::new()), &traces, &NetworkModel::default(), &rec);
        let snap = rec.snapshot();
        assert_eq!(snap.total_requests(), m.requests);
        assert_eq!(snap.count(HitClass::Server), m.count(HitClass::Server));
        assert!((snap.avg_latency() - m.avg_latency()).abs() < 1e-3);
    }

    #[test]
    fn no_cache_engine_latency() {
        let net = NetworkModel::default();
        let traces = vec![trace(&[1, 1, 1])];
        let m = run_engine(&mut NoCacheEngine, &traces, &net);
        assert!((m.avg_latency() - net.latency(HitClass::Server)).abs() < 1e-12);
        assert_eq!(m.hit_ratio(), 0.0);
    }
}
