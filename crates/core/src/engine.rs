//! The simulation engine: one event-loop entrypoint for every scheme.
//!
//! Every caching scheme implements [`SchemeEngine`]; the [`Engine`]
//! drives it from a [`SimClock`]. Request handling is split into an
//! *admission* (the synchronous cache-state mutation, returning an
//! [`Admission`]) and a *completion continuation* (the priced response
//! reaching the client, an [`Event::Completion`] on the clock).
//!
//! Two clock modes share this loop:
//!
//! * [`ClockMode::Compat`] executes the dense round-robin schedule the
//!   old inline driver used — arrivals one round apart, priced
//!   analytically at admission — and is byte-identical to it (DESIGN.md
//!   sketches the ordering proof). The schedule is executed directly
//!   rather than through the wheel: it is statically known, and the hot
//!   path stays as fast as the pre-event-core driver.
//! * [`ClockMode::Event`] materializes the schedule on the wheel:
//!   arrivals self-schedule, a request occupies its proxy until its
//!   completion fires (so overlapping admissions queue behind each
//!   other), transport stalls become [`Event::Timeout`]s and genuine
//!   backlog, and latency is measured as wait + service at completion.

use crate::clock::{ticks_of, ClockMode, SimClock, TICKS_PER_ROUND, TICKS_PER_UNIT};
use crate::event::Event;
use crate::metrics::RunMetrics;
use crate::net::{HitClass, LatencyModel};
use crate::recorder::Recorder;
use webcache_workload::{Request, Trace};

/// The synchronous half of serving a request: where it was served from,
/// plus how many detection-timeout units of transport stalling the
/// admission incurred (lost/duplicated/reordered cluster messages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// Where the request was served from.
    pub class: HitClass,
    /// Detection-timeout units spent on stalled protocol messages while
    /// admitting. Zero for fault-free engines.
    pub stalls: u64,
}

/// A caching scheme under simulation.
pub trait SchemeEngine {
    /// Serves one request arriving at `proxy`'s cluster; returns where it
    /// was served from. The engine applies all cache-state side effects.
    fn serve(&mut self, proxy: usize, request: &Request) -> HitClass;

    /// Admission half of the request path: applies all cache-state side
    /// effects and reports the hit class plus any transport stalls the
    /// admission incurred. The default wraps [`SchemeEngine::serve`]
    /// with zero stalls; engines with an unreliable transport (Hier-GD)
    /// override this to surface their stall count to the event loop.
    fn admit(&mut self, proxy: usize, request: &Request) -> Admission {
        Admission { class: self.serve(proxy, request), stalls: 0 }
    }

    /// End-to-end latency of a request served from `class`. The default
    /// is the paper's proxy-architecture path model; engines with a
    /// different architecture (e.g. the proxy-less Squirrel baseline)
    /// override it.
    fn latency_of(&self, model: &dyn LatencyModel, class: HitClass) -> f64 {
        model.latency(class)
    }

    /// Full analytic price of an admission: the class latency plus one
    /// detection timeout per stall unit. This is the completion
    /// continuation's service time; engines should override
    /// [`SchemeEngine::latency_of`] rather than this.
    fn price(&self, model: &dyn LatencyModel, admission: &Admission) -> f64 {
        let base = self.latency_of(model, admission.class);
        if admission.stalls == 0 {
            // Skipping `+ 0.0 * t` is bit-identical for the positive
            // latencies the models produce, and keeps the fault-free hot
            // path to a single model call.
            base
        } else {
            base + admission.stalls as f64 * model.t_timeout()
        }
    }

    /// Batched lookup hook: called before a wave of requests is served to
    /// `proxy`'s cluster, letting the engine pre-resolve the DHT state the
    /// wave will probe (grouped by responsible node) instead of paying one
    /// lookup round-trip at a time. Must be a pure warm-up: serving the
    /// wave afterwards has to produce byte-identical metrics and message
    /// charges whether or not this was called. Default: no-op.
    fn prepare_wave(&mut self, _proxy: usize, _wave: &[Request]) {}

    /// Called once after the trace is exhausted, e.g. to merge message
    /// ledgers into the metrics.
    fn finish(&mut self, _metrics: &mut RunMetrics) {}

    /// Scheme label for reports.
    fn name(&self) -> &'static str;
}

/// Requests per [`SchemeEngine::prepare_wave`] batch. The wave models the
/// lookahead a proxy gets from its accept queue: big enough to amortize
/// per-node batching, small enough that the warmed state is still current
/// when the wave is served.
const WAVE: usize = 1024;

/// Watermark load-shed policy bounding a proxy's admission queue in the
/// event-clock engine: once a proxy's backlog (its busy horizon minus
/// the current tick) exceeds `high_rounds`, arrivals stop being admitted
/// into the cache fabric and degrade straight to the origin server —
/// shedding the background work an admission would have generated —
/// until the backlog drains below `low_rounds`. Compat mode has no queue
/// to measure, so the policy only engages under
/// [`crate::clock::ClockMode::Event`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Backlog (in rounds) above which shedding engages; 0 disables the
    /// policy entirely.
    pub high_rounds: u64,
    /// Backlog (in rounds) below which shedding disengages (hysteresis:
    /// must sit below `high_rounds`).
    pub low_rounds: u64,
}

impl ShedPolicy {
    /// The disabled policy: every arrival is admitted.
    pub fn none() -> Self {
        ShedPolicy::default()
    }

    /// True when the policy never engages.
    pub fn is_none(&self) -> bool {
        self.high_rounds == 0
    }
}

/// The event-loop driver: a scheme, its traces, and a latency model,
/// run from a [`SimClock`]. This is the single entrypoint that replaced
/// the `run_engine` / `run_engine_recorded` twins — pass
/// [`NoopRecorder`](crate::recorder::NoopRecorder) when nothing observes
/// the run.
pub struct Engine<'a, E: SchemeEngine + ?Sized> {
    scheme: &'a mut E,
    traces: &'a [Trace],
    model: &'a dyn LatencyModel,
    shed: ShedPolicy,
    /// Requests the shed policy degraded straight to origin during the
    /// last [`Engine::run`] (event mode only; always 0 when disarmed).
    pub shed_served: u64,
}

impl<'a, E: SchemeEngine + ?Sized> Engine<'a, E> {
    /// Couples `scheme` to one trace per proxy and a latency model.
    ///
    /// # Panics
    /// Panics if `traces` is empty.
    pub fn new(scheme: &'a mut E, traces: &'a [Trace], model: &'a dyn LatencyModel) -> Self {
        assert!(!traces.is_empty(), "need at least one proxy trace");
        Engine { scheme, traces, model, shed: ShedPolicy::none(), shed_served: 0 }
    }

    /// Arms the watermark load-shed policy (see [`ShedPolicy`]).
    pub fn with_shed(mut self, policy: ShedPolicy) -> Self {
        self.shed = policy;
        self
    }

    /// Runs the full schedule on `clock`, reporting every served request
    /// to `recorder`, and returns the aggregated metrics.
    pub fn run<R: Recorder>(&mut self, clock: &mut SimClock, recorder: &R) -> RunMetrics {
        self.shed_served = 0;
        let mut metrics = RunMetrics::default();
        match clock.mode() {
            ClockMode::Compat => self.run_compat(clock, recorder, &mut metrics),
            ClockMode::Event => self.run_event(clock, recorder, &mut metrics),
        }
        self.scheme.finish(&mut metrics);
        metrics
    }

    /// Compat mode: the dense round-robin schedule, executed directly.
    /// Identical to the event schedule (arrivals seeded in proxy order at
    /// tick 0, each rescheduling its successor one round later, FIFO
    /// within a tick) — see the ordering proof sketch in DESIGN.md.
    fn run_compat<R: Recorder>(
        &mut self,
        clock: &mut SimClock,
        recorder: &R,
        metrics: &mut RunMetrics,
    ) {
        let mut cursors = vec![0usize; self.traces.len()];
        let mut live = self.traces.len();
        let mut round = 0u64;
        while live > 0 {
            live = 0;
            clock.advance_to(round * TICKS_PER_ROUND);
            round += 1;
            for (p, trace) in self.traces.iter().enumerate() {
                if let Some(req) = trace.requests.get(cursors[p]) {
                    if cursors[p].is_multiple_of(WAVE) {
                        let wave = &trace.requests
                            [cursors[p]..trace.requests.len().min(cursors[p] + WAVE)];
                        self.scheme.prepare_wave(p, wave);
                    }
                    cursors[p] += 1;
                    if cursors[p] < trace.requests.len() {
                        live += 1;
                    }
                    let admission = self.scheme.admit(p, req);
                    // Bypass the `price` hop for stall-free admissions —
                    // the overwhelmingly common case, and bit-identical
                    // (stalls contribute exactly `stalls * t_timeout`).
                    let latency = if admission.stalls == 0 {
                        self.scheme.latency_of(self.model, admission.class)
                    } else {
                        self.scheme.price(self.model, &admission)
                    };
                    metrics.record(admission.class, latency);
                    if R::ENABLED {
                        recorder.request(p, admission.class, latency);
                    }
                }
            }
            // `live` counts proxies with requests left *after* this round;
            // the loop above also handles the final request of each trace.
            if cursors.iter().zip(self.traces).all(|(&c, t)| c >= t.requests.len()) {
                break;
            }
        }
        // Arrival + completion per request, accounted in one shot rather
        // than per request — nothing observes the counters mid-run.
        let served: usize = cursors.iter().sum();
        clock.account_virtual(2 * served as u64);
    }

    /// Event mode: the same schedule materialized on the wheel, with
    /// per-proxy occupancy. Admissions still happen at arrival (cache
    /// dynamics — and therefore hit classes and message ledgers — are
    /// identical to compat mode); latency is measured at completion as
    /// queue wait plus service.
    fn run_event<R: Recorder>(
        &mut self,
        clock: &mut SimClock,
        recorder: &R,
        metrics: &mut RunMetrics,
    ) {
        for (p, trace) in self.traces.iter().enumerate() {
            if !trace.requests.is_empty() {
                clock.schedule_at(0, Event::Arrival { proxy: p, index: 0 });
            }
        }
        let mut next_free = vec![0u64; self.traces.len()];
        let mut shedding = vec![false; self.traces.len()];
        while let Some(event) = clock.pop() {
            match event {
                Event::Arrival { proxy, index } => {
                    let trace = &self.traces[proxy];
                    let req = &trace.requests[index];
                    if index.is_multiple_of(WAVE) {
                        let wave = &trace.requests[index..trace.requests.len().min(index + WAVE)];
                        self.scheme.prepare_wave(proxy, wave);
                    }
                    if index + 1 < trace.requests.len() {
                        clock.schedule_in(
                            TICKS_PER_ROUND,
                            Event::Arrival { proxy, index: index + 1 },
                        );
                    }
                    if !self.shed.is_none() {
                        let backlog = next_free[proxy].saturating_sub(clock.now());
                        if backlog >= self.shed.high_rounds * TICKS_PER_ROUND {
                            shedding[proxy] = true;
                        } else if backlog <= self.shed.low_rounds * TICKS_PER_ROUND {
                            shedding[proxy] = false;
                        }
                        if shedding[proxy] {
                            // Degrade straight to origin: no admission
                            // (and so no background work), no occupancy
                            // on the proxy — that is the relief valve.
                            self.shed_served += 1;
                            let price = self.scheme.latency_of(self.model, HitClass::Server);
                            let now = clock.now();
                            let done = now + ticks_of(price).max(1);
                            let measured = (done - now) as f64 / TICKS_PER_UNIT as f64;
                            clock.schedule_at(
                                done,
                                Event::Completion {
                                    proxy,
                                    class: HitClass::Server,
                                    latency: measured,
                                },
                            );
                            continue;
                        }
                    }
                    let admission = self.scheme.admit(proxy, req);
                    let price = self.scheme.price(self.model, &admission);
                    let now = clock.now();
                    let start = now.max(next_free[proxy]);
                    let service = ticks_of(price).max(1);
                    let done = start + service;
                    next_free[proxy] = done;
                    if admission.stalls > 0 {
                        let stall = ticks_of(admission.stalls as f64 * self.model.t_timeout());
                        clock.schedule_at(
                            start + stall.max(1),
                            Event::Timeout { proxy, units: admission.stalls },
                        );
                    }
                    let measured = (done - now) as f64 / TICKS_PER_UNIT as f64;
                    clock.schedule_at(
                        done,
                        Event::Completion { proxy, class: admission.class, latency: measured },
                    );
                }
                Event::Completion { proxy, class, latency } => {
                    metrics.record(class, latency);
                    if R::ENABLED {
                        recorder.request(proxy, class, latency);
                    }
                }
                // Timeouts mark when stalled retries resolve; the delay
                // itself is already in the completion's service time.
                Event::Timeout { .. } => {}
                // Fault events are scheduled (and handled) only by the
                // fault driver's loop in `fault.rs`.
                Event::Fault { .. } => {}
            }
        }
    }
}

/// A do-nothing engine: every request goes to the server. Used by tests
/// as the floor any real scheme must beat.
pub struct NoCacheEngine;

impl SchemeEngine for NoCacheEngine {
    fn serve(&mut self, _proxy: usize, _request: &Request) -> HitClass {
        HitClass::Server
    }

    fn name(&self) -> &'static str {
        "no-cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkModel;
    use crate::recorder::NoopRecorder;
    use webcache_workload::Request;

    fn trace(objects: &[u32]) -> Trace {
        Trace::new(objects.iter().map(|&o| Request { client: 0, object: o, size: 1 }).collect())
    }

    fn run_compat<E: SchemeEngine + ?Sized>(
        engine: &mut E,
        traces: &[Trace],
        net: &NetworkModel,
    ) -> RunMetrics {
        Engine::new(engine, traces, net).run(&mut SimClock::compat(), &NoopRecorder)
    }

    /// Records the (proxy, object) order it is driven in.
    struct Probe(Vec<(usize, u32)>);

    impl SchemeEngine for Probe {
        fn serve(&mut self, proxy: usize, request: &Request) -> HitClass {
            self.0.push((proxy, request.object));
            HitClass::Server
        }
        fn name(&self) -> &'static str {
            "probe"
        }
    }

    #[test]
    fn watermark_shedding_bounds_the_event_queue_and_degrades_to_origin() {
        // A scheme whose admitted service time dwarfs the one-round
        // arrival gap, so the naive event queue grows without bound.
        struct Expensive;
        impl SchemeEngine for Expensive {
            fn serve(&mut self, _proxy: usize, _request: &Request) -> HitClass {
                HitClass::OwnP2p
            }
            fn latency_of(&self, model: &dyn LatencyModel, class: HitClass) -> f64 {
                match class {
                    HitClass::Server => model.latency(class),
                    _ => 8.0,
                }
            }
            fn name(&self) -> &'static str {
                "expensive"
            }
        }
        let objects: Vec<u32> = (0..200).collect();
        let traces = vec![trace(&objects)];
        let net = NetworkModel::default();
        let mut naive_scheme = Expensive;
        let naive = Engine::new(&mut naive_scheme, &traces, &net)
            .run(&mut SimClock::event(), &NoopRecorder);
        let mut shed_scheme = Expensive;
        let mut armed = Engine::new(&mut shed_scheme, &traces, &net)
            .with_shed(ShedPolicy { high_rounds: 16, low_rounds: 4 });
        let shed = armed.run(&mut SimClock::event(), &NoopRecorder);
        assert!(armed.shed_served > 0, "shedding never engaged");
        assert_eq!(shed.requests, naive.requests, "every request is still served");
        assert!(
            shed.avg_latency() < naive.avg_latency(),
            "shedding must relieve the backlog: {} vs naive {}",
            shed.avg_latency(),
            naive.avg_latency()
        );
        // A disarmed policy is inert: bit-identical to no policy at all.
        let mut again = Expensive;
        let mut disarmed = Engine::new(&mut again, &traces, &net).with_shed(ShedPolicy::none());
        let re = disarmed.run(&mut SimClock::event(), &NoopRecorder);
        assert_eq!(disarmed.shed_served, 0);
        assert_eq!(re.avg_latency(), naive.avg_latency());
    }

    #[test]
    fn all_requests_served_exactly_once() {
        let traces = vec![trace(&[1, 2, 3]), trace(&[4, 5])];
        let mut e = Probe(Vec::new());
        let m = run_compat(&mut e, &traces, &NetworkModel::default());
        assert_eq!(m.requests, 5);
        assert_eq!(e.0.len(), 5);
        // Round-robin interleave: p0,p1,p0,p1,p0.
        assert_eq!(e.0, vec![(0, 1), (1, 4), (0, 2), (1, 5), (0, 3)]);
    }

    #[test]
    fn event_mode_preserves_the_interleave() {
        let traces = vec![trace(&[1, 2, 3]), trace(&[4, 5])];
        let mut e = Probe(Vec::new());
        let m = Engine::new(&mut e, &traces, &NetworkModel::default())
            .run(&mut SimClock::event(), &NoopRecorder);
        assert_eq!(m.requests, 5);
        assert_eq!(e.0, vec![(0, 1), (1, 4), (0, 2), (1, 5), (0, 3)]);
    }

    #[test]
    fn uneven_traces_drain_fully() {
        let traces = vec![trace(&[1]), trace(&[2, 3, 4, 5])];
        let m = run_compat(&mut Probe(Vec::new()), &traces, &NetworkModel::default());
        assert_eq!(m.requests, 5);
    }

    #[test]
    fn empty_trace_is_fine() {
        let traces = vec![trace(&[]), trace(&[1])];
        let m = run_compat(&mut Probe(Vec::new()), &traces, &NetworkModel::default());
        assert_eq!(m.requests, 1);
    }

    #[test]
    fn recorded_run_sees_every_request() {
        use crate::recorder::StatsRecorder;
        let traces = vec![trace(&[1, 2, 3]), trace(&[4, 5])];
        let rec = StatsRecorder::new();
        let m = Engine::new(&mut Probe(Vec::new()), &traces, &NetworkModel::default())
            .run(&mut SimClock::compat(), &rec);
        let snap = rec.snapshot();
        assert_eq!(snap.total_requests(), m.requests);
        assert_eq!(snap.count(HitClass::Server), m.count(HitClass::Server));
        assert!((snap.avg_latency() - m.avg_latency()).abs() < 1e-3);
    }

    #[test]
    fn no_cache_engine_latency() {
        let net = NetworkModel::default();
        let traces = vec![trace(&[1, 1, 1])];
        let m = run_compat(&mut NoCacheEngine, &traces, &net);
        assert!((m.avg_latency() - net.latency(HitClass::Server)).abs() < 1e-12);
        assert_eq!(m.hit_ratio(), 0.0);
    }

    #[test]
    fn event_mode_serializes_a_busy_proxy() {
        // One proxy, back-to-back server fetches: service (11 units =
        // 352 ticks) far exceeds the 32-tick arrival period, so request
        // n waits behind n-1 and measured latency grows by one service
        // time minus one arrival period per request.
        let net = NetworkModel::default();
        let traces = vec![trace(&[1, 2, 3])];
        let m = Engine::new(&mut NoCacheEngine, &traces, &net)
            .run(&mut SimClock::event(), &NoopRecorder);
        let service = net.latency(HitClass::Server);
        let round = TICKS_PER_ROUND as f64 / TICKS_PER_UNIT as f64;
        let expect = (service) + (2.0 * service - round) + (3.0 * service - 2.0 * round);
        assert!(
            (m.total_latency - expect).abs() < 1e-9,
            "queueing must accumulate: {} vs {expect}",
            m.total_latency
        );
    }

    #[test]
    fn compat_and_event_agree_on_hit_classes() {
        let traces = vec![trace(&[1, 2, 1, 3, 1]), trace(&[2, 2, 4])];
        let compat = run_compat(&mut Probe(Vec::new()), &traces, &NetworkModel::default());
        let event = Engine::new(&mut Probe(Vec::new()), &traces, &NetworkModel::default())
            .run(&mut SimClock::event(), &NoopRecorder);
        assert_eq!(compat.requests, event.requests);
        for class in HitClass::ALL {
            assert_eq!(compat.count(class), event.count(class));
        }
    }

    #[test]
    fn stalled_admissions_price_timeouts_and_schedule_timeout_events() {
        /// Every admission reports one stall unit.
        struct Stalled;
        impl SchemeEngine for Stalled {
            fn serve(&mut self, _p: usize, _r: &Request) -> HitClass {
                HitClass::LocalProxy
            }
            fn admit(&mut self, proxy: usize, request: &Request) -> Admission {
                Admission { class: self.serve(proxy, request), stalls: 1 }
            }
            fn name(&self) -> &'static str {
                "stalled"
            }
        }
        let net = NetworkModel::default();
        let traces = vec![trace(&[1, 2])];
        let m = run_compat(&mut Stalled, &traces, &net);
        let expect = 2.0 * (net.latency(HitClass::LocalProxy) + net.t_timeout);
        assert!((m.total_latency - expect).abs() < 1e-12);

        let mut clock = SimClock::event();
        let me = Engine::new(&mut Stalled, &traces, &net).run(&mut clock, &NoopRecorder);
        assert_eq!(me.requests, 2);
        // 2 arrivals + 2 completions + 2 timeout events.
        assert_eq!(clock.delivered(), 6);
    }
}
