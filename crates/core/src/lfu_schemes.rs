//! The LFU-family caching schemes: NC, NC-EC, SC, SC-EC (§2).
//!
//! One engine covers all four, controlled by two switches that mirror the
//! paper's taxonomy:
//!
//! * **cooperation** — whether proxies serve each other's misses (the
//!   SC/SC-EC column; NC/NC-EC proxies never talk to each other);
//! * **client caches** — whether each proxy is backed by the unified P2P
//!   client-cache tier (the *-EC row; modeled as one cache of the
//!   aggregate client-cache size, the paper's §5.1 upper-bound
//!   simplification).
//!
//! All four run LFU replacement, "to minimize access latency" (§2). SC
//! proxies cache a local copy of every object fetched from a cooperating
//! proxy ("Once a proxy fetches an object from another proxy, it caches
//! the object locally") and do not coordinate replacement.

use crate::engine::SchemeEngine;
use crate::net::HitClass;
use crate::site::{SiteTier, TwoTierLfuSite};
use webcache_workload::Request;

/// NC / NC-EC / SC / SC-EC engine.
#[derive(Clone, Debug)]
pub struct LfuFamilyEngine {
    sites: Vec<TwoTierLfuSite>,
    cooperate: bool,
    name: &'static str,
}

impl LfuFamilyEngine {
    /// Builds an engine for `num_proxies` proxies with `proxy_capacity`
    /// objects each; `p2p_capacity > 0` enables the unified client-cache
    /// tier (the *-EC schemes), `cooperate` enables inter-proxy sharing
    /// (the SC schemes).
    pub fn new(
        num_proxies: usize,
        proxy_capacity: usize,
        p2p_capacity: usize,
        cooperate: bool,
    ) -> Self {
        assert!(num_proxies > 0, "need at least one proxy");
        let name = match (cooperate, p2p_capacity > 0) {
            (false, false) => "NC",
            (false, true) => "NC-EC",
            (true, false) => "SC",
            (true, true) => "SC-EC",
        };
        LfuFamilyEngine {
            sites: (0..num_proxies)
                .map(|_| TwoTierLfuSite::new(proxy_capacity, p2p_capacity))
                .collect(),
            cooperate,
            name,
        }
    }

    /// The NC baseline at a given proxy capacity (single tier, no
    /// cooperation) — every figure's denominator.
    pub fn nc(num_proxies: usize, proxy_capacity: usize) -> Self {
        Self::new(num_proxies, proxy_capacity, 0, false)
    }

    /// Immutable access to a proxy's site (tests).
    pub fn site(&self, proxy: usize) -> &TwoTierLfuSite {
        &self.sites[proxy]
    }
}

impl SchemeEngine for LfuFamilyEngine {
    fn serve(&mut self, proxy: usize, request: &Request) -> HitClass {
        let object = request.object;
        // Local site: proxy cache, then own P2P client cache.
        if let Some(tier) = self.sites[proxy].lookup(object) {
            return match tier {
                SiteTier::Proxy => HitClass::LocalProxy,
                SiteTier::P2p => HitClass::OwnP2p,
            };
        }
        // Cooperating proxies (SC): first hit wins; the serving site
        // registers the access; the local site caches a copy.
        if self.cooperate {
            let remote = (0..self.sites.len())
                .filter(|&q| q != proxy)
                .find_map(|q| self.sites[q].tier_of(object).map(|t| (q, t)));
            if let Some((q, tier)) = remote {
                self.sites[q].remote_touch(object);
                self.sites[proxy].admit(object);
                return match tier {
                    SiteTier::Proxy => HitClass::CoopProxy,
                    // Served out of the remote P2P cache via the push
                    // protocol (§4.5).
                    SiteTier::P2p => HitClass::CoopP2p,
                };
            }
        }
        // Origin server.
        self.sites[proxy].admit(object);
        HitClass::Server
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::engine::Engine;
    use crate::metrics::latency_gain_percent;
    use crate::net::NetworkModel;
    use crate::recorder::NoopRecorder;
    use webcache_workload::{ProWGen, ProWGenConfig, Trace};

    fn traces(n: usize, requests: usize) -> Vec<Trace> {
        (0..n)
            .map(|p| {
                ProWGen::new(ProWGenConfig {
                    requests,
                    distinct_objects: 1_000,
                    seed: 42 + p as u64,
                    ..ProWGenConfig::default()
                })
                .generate()
            })
            .collect()
    }

    fn run(engine: &mut LfuFamilyEngine, traces: &[Trace]) -> crate::metrics::RunMetrics {
        Engine::new(engine, traces, &NetworkModel::default())
            .run(&mut SimClock::compat(), &NoopRecorder)
    }

    #[test]
    fn names() {
        assert_eq!(LfuFamilyEngine::new(2, 10, 0, false).name(), "NC");
        assert_eq!(LfuFamilyEngine::new(2, 10, 5, false).name(), "NC-EC");
        assert_eq!(LfuFamilyEngine::new(2, 10, 0, true).name(), "SC");
        assert_eq!(LfuFamilyEngine::new(2, 10, 5, true).name(), "SC-EC");
    }

    #[test]
    fn nc_never_reports_cooperative_hits() {
        let ts = traces(2, 20_000);
        let m = run(&mut LfuFamilyEngine::nc(2, 50), &ts);
        assert_eq!(m.count(HitClass::CoopProxy), 0);
        assert_eq!(m.count(HitClass::CoopP2p), 0);
        assert_eq!(m.count(HitClass::OwnP2p), 0);
        assert!(m.count(HitClass::LocalProxy) > 0);
    }

    #[test]
    fn sc_beats_nc() {
        let ts = traces(2, 30_000);
        let nc = run(&mut LfuFamilyEngine::new(2, 40, 0, false), &ts);
        let sc = run(&mut LfuFamilyEngine::new(2, 40, 0, true), &ts);
        assert!(sc.count(HitClass::CoopProxy) > 0, "SC must use cooperation");
        let gain = latency_gain_percent(&nc, &sc);
        assert!(gain > 0.0, "SC gain {gain}");
    }

    #[test]
    fn ec_beats_plain_when_proxy_small() {
        let ts = traces(2, 30_000);
        let nc = run(&mut LfuFamilyEngine::new(2, 30, 0, false), &ts);
        let nc_ec = run(&mut LfuFamilyEngine::new(2, 30, 60, false), &ts);
        assert!(nc_ec.count(HitClass::OwnP2p) > 0);
        let gain = latency_gain_percent(&nc, &nc_ec);
        assert!(gain > 0.0, "NC-EC gain {gain}");
        let sc = run(&mut LfuFamilyEngine::new(2, 30, 0, true), &ts);
        let sc_ec = run(&mut LfuFamilyEngine::new(2, 30, 60, true), &ts);
        assert!(
            sc_ec.avg_latency() < sc.avg_latency(),
            "SC-EC {} vs SC {}",
            sc_ec.avg_latency(),
            sc.avg_latency()
        );
    }

    #[test]
    fn sc_ec_serves_from_remote_p2p() {
        let ts = traces(2, 30_000);
        let m = run(&mut LfuFamilyEngine::new(2, 20, 100, true), &ts);
        assert!(m.count(HitClass::CoopP2p) > 0, "push-protocol hits expected");
    }

    #[test]
    fn single_proxy_sc_equals_nc() {
        // With one proxy there is nobody to cooperate with.
        let ts = traces(1, 15_000);
        let nc = run(&mut LfuFamilyEngine::new(1, 40, 0, false), &ts);
        let sc = run(&mut LfuFamilyEngine::new(1, 40, 0, true), &ts);
        assert_eq!(nc.avg_latency(), sc.avg_latency());
        assert_eq!(nc.by_class, sc.by_class);
    }

    #[test]
    fn bigger_cache_serves_more_locally() {
        let ts = traces(1, 20_000);
        let small = run(&mut LfuFamilyEngine::nc(1, 20), &ts);
        let big = run(&mut LfuFamilyEngine::nc(1, 400), &ts);
        assert!(big.count(HitClass::LocalProxy) > small.count(HitClass::LocalProxy));
        assert!(big.avg_latency() < small.avg_latency());
    }

    #[test]
    fn repeated_object_hits_after_first_fetch() {
        let t = Trace::new(
            (0..10).map(|_| webcache_workload::Request { client: 0, object: 7, size: 1 }).collect(),
        );
        let m = run(&mut LfuFamilyEngine::nc(1, 4), &[t]);
        assert_eq!(m.count(HitClass::Server), 1);
        assert_eq!(m.count(HitClass::LocalProxy), 9);
    }
}
