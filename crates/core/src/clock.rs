//! The discrete-event clock: a hierarchical time wheel over integer
//! ticks.
//!
//! Model time is measured in **ticks**, [`TICKS_PER_UNIT`] per model
//! latency unit (`Tl = 1.0`). Consecutive requests at one proxy are one
//! arrival period ([`TICKS_PER_ROUND`]) apart, so the classic round-robin
//! interleave of the old inline driver is exactly the schedule produced
//! by self-scheduling arrivals: seed proxy `0..n` at tick 0 in index
//! order, and let each arrival schedule its successor one period later.
//! Because delivery within a tick is FIFO in scheduling order, round `r`
//! always pops `p0, p1, …` in proxy order — the compat-mode ordering
//! proof DESIGN.md sketches rests on this invariant.
//!
//! The wheel is hierarchical: a 1024-slot level-0 wheel at one tick per
//! slot, a 256-slot level-1 wheel at 1024 ticks per slot, and a sorted
//! overflow map for everything farther out (far-future fault events,
//! pathological stalls). Scheduling and delivery are O(1) for the dense
//! near-term traffic the simulation generates; cascades touch each event
//! at most twice. Delivery order is total: ascending tick, FIFO within a
//! tick, enforced by an always-on monotonicity assertion in [`SimClock::pop`].

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::str::FromStr;

/// Simulation ticks per model latency unit (`Tl = 1.0` → 32 ticks).
/// Event-mode latencies are quantized to 1/32 of a unit; compat mode
/// prices analytically and never rounds.
pub const TICKS_PER_UNIT: u64 = 32;

/// Ticks between consecutive request arrivals at one proxy — one
/// "round" of the classic round-robin driver.
pub const TICKS_PER_ROUND: u64 = 32;

/// Converts a model-unit duration to ticks (round to nearest).
pub fn ticks_of(units: f64) -> u64 {
    debug_assert!(units >= 0.0, "durations are non-negative");
    (units * TICKS_PER_UNIT as f64).round() as u64
}

/// How the engine prices and orders work on the clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockMode {
    /// Replay the analytic pricing of the inline driver through the
    /// event schedule: requests are priced at arrival with the
    /// [`LatencyModel`](crate::net::LatencyModel)'s constants, in the
    /// exact order the old round-robin loop served them. Every golden
    /// (run, churn, transport, split-brain, chaos) is byte-identical to
    /// the pre-event-core simulator.
    #[default]
    Compat,
    /// Full discrete-event execution: requests occupy their proxy until
    /// the completion event fires, so overlapping admissions queue,
    /// transport stalls become genuine backlog, and non-uniform
    /// latency models shift the schedule instead of just the totals.
    Event,
}

impl ClockMode {
    /// Canonical lowercase label (CLI flag value, report field).
    pub fn label(self) -> &'static str {
        match self {
            ClockMode::Compat => "compat",
            ClockMode::Event => "event",
        }
    }
}

impl fmt::Display for ClockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ClockMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "compat" => Ok(ClockMode::Compat),
            "event" => Ok(ClockMode::Event),
            other => Err(format!("unknown clock mode '{other}' (expected 'compat' or 'event')")),
        }
    }
}

/// Level-0 slots: one tick each.
const L0_SLOTS: usize = 1024;
/// Level-1 slots: [`L0_SPAN`] ticks each.
const L1_SLOTS: usize = 256;
/// Ticks covered by the level-0 window.
const L0_SPAN: u64 = L0_SLOTS as u64;
/// Ticks covered by the level-1 window.
const L1_SPAN: u64 = L0_SPAN * L1_SLOTS as u64;

#[derive(Clone, Debug)]
struct Entry {
    tick: u64,
    event: Event,
}

/// Occupancy bitmaps: one bit per slot, scanned by word.
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1 << (i & 63);
}

fn clear_bit(bits: &mut [u64], i: usize) {
    bits[i >> 6] &= !(1 << (i & 63));
}

/// First set bit at index `start` or later, if any.
fn scan_from(bits: &[u64], start: usize) -> Option<usize> {
    let mut w = start >> 6;
    if w >= bits.len() {
        return None;
    }
    let mut word = bits[w] & (!0u64 << (start & 63));
    loop {
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
        w += 1;
        if w == bits.len() {
            return None;
        }
        word = bits[w];
    }
}

/// The simulation clock: schedules [`Event`]s at future ticks and
/// delivers them in (tick, FIFO) order.
///
/// The clock also carries the run's [`ClockMode`] and two conservation
/// counters — events scheduled and events delivered — that the
/// clock-compat test suite checks for balance after every run.
#[derive(Debug)]
pub struct SimClock {
    mode: ClockMode,
    now: u64,
    /// Start of the level-0 window (multiple of [`L0_SPAN`]).
    w0: u64,
    /// Start of the level-1 window (multiple of [`L1_SPAN`]).
    w1: u64,
    level0: Vec<VecDeque<Entry>>,
    l0_bits: [u64; L0_SLOTS / 64],
    level1: Vec<VecDeque<Entry>>,
    l1_bits: [u64; L1_SLOTS / 64],
    overflow: BTreeMap<u64, VecDeque<Entry>>,
    pending: u64,
    scheduled: u64,
    delivered: u64,
}

impl SimClock {
    /// A fresh clock at tick 0 in `mode`.
    pub fn new(mode: ClockMode) -> Self {
        SimClock {
            mode,
            now: 0,
            w0: 0,
            w1: 0,
            level0: (0..L0_SLOTS).map(|_| VecDeque::new()).collect(),
            l0_bits: [0; L0_SLOTS / 64],
            level1: (0..L1_SLOTS).map(|_| VecDeque::new()).collect(),
            l1_bits: [0; L1_SLOTS / 64],
            overflow: BTreeMap::new(),
            pending: 0,
            scheduled: 0,
            delivered: 0,
        }
    }

    /// A fresh [`ClockMode::Compat`] clock.
    pub fn compat() -> Self {
        SimClock::new(ClockMode::Compat)
    }

    /// A fresh [`ClockMode::Event`] clock.
    pub fn event() -> Self {
        SimClock::new(ClockMode::Event)
    }

    /// The clock's execution mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Current simulation time in ticks (the timestamp of the most
    /// recently delivered event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Events scheduled but not yet delivered.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Total events ever scheduled on this clock.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events delivered by [`SimClock::pop`].
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Schedules `event` at absolute `tick`.
    ///
    /// # Panics
    /// Panics if `tick` is in the past (`tick < now()`).
    pub fn schedule_at(&mut self, tick: u64, event: Event) {
        assert!(tick >= self.now, "event scheduled in the past: {tick} < {}", self.now);
        self.scheduled += 1;
        self.pending += 1;
        let entry = Entry { tick, event };
        if tick < self.w0 + L0_SPAN {
            let slot = (tick % L0_SPAN) as usize;
            set_bit(&mut self.l0_bits, slot);
            self.level0[slot].push_back(entry);
        } else if tick < self.w1 + L1_SPAN {
            let slot = ((tick - self.w1) / L0_SPAN) as usize;
            set_bit(&mut self.l1_bits, slot);
            self.level1[slot].push_back(entry);
        } else {
            self.overflow.entry(tick).or_default().push_back(entry);
        }
    }

    /// Schedules `event` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, event: Event) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Delivers the next event, advancing `now` to its tick. Events come
    /// back in ascending tick order, FIFO within a tick. Returns `None`
    /// when the schedule is empty.
    pub fn pop(&mut self) -> Option<Event> {
        if self.pending == 0 {
            return None;
        }
        loop {
            let start = self.now.saturating_sub(self.w0) as usize;
            if let Some(slot) = scan_from(&self.l0_bits, start.min(L0_SLOTS)) {
                let tick = self.w0 + slot as u64;
                assert!(tick >= self.now, "non-monotone delivery: {tick} < {}", self.now);
                self.now = tick;
                let q = &mut self.level0[slot];
                let entry = q.pop_front().expect("occupancy bit set on empty slot");
                if q.is_empty() {
                    clear_bit(&mut self.l0_bits, slot);
                }
                self.pending -= 1;
                self.delivered += 1;
                return Some(entry.event);
            }
            self.advance_window();
        }
    }

    /// Advances the level-0 window to the next populated region,
    /// cascading level-1 slots (and, when level 1 is exhausted, the
    /// overflow map) down. Only called with `pending > 0` and the
    /// current level-0 window drained.
    fn advance_window(&mut self) {
        loop {
            // The level-1 slot covering the current (drained) level-0
            // window has already been cascaded and cleared, so scanning
            // from it finds strictly later work.
            let from = ((self.w0 - self.w1) / L0_SPAN) as usize;
            if let Some(slot) = scan_from(&self.l1_bits, from.min(L1_SLOTS)) {
                self.w0 = self.w1 + slot as u64 * L0_SPAN;
                clear_bit(&mut self.l1_bits, slot);
                let entries = std::mem::take(&mut self.level1[slot]);
                for entry in entries {
                    let l0 = (entry.tick % L0_SPAN) as usize;
                    set_bit(&mut self.l0_bits, l0);
                    self.level0[l0].push_back(entry);
                }
                return;
            }
            // Level 1 is empty: jump both windows to the earliest
            // overflow tick and refill level 1 from the overflow map.
            let first = *self.overflow.keys().next().expect("pending events must live somewhere");
            self.w1 = first - first % L1_SPAN;
            self.w0 = self.w1;
            let beyond = self.overflow.split_off(&(self.w1 + L1_SPAN));
            let within = std::mem::replace(&mut self.overflow, beyond);
            for (tick, entries) in within {
                let slot = ((tick - self.w1) / L0_SPAN) as usize;
                set_bit(&mut self.l1_bits, slot);
                self.level1[slot].extend(entries);
            }
        }
    }

    /// Compat-mode bookkeeping: the dense round-robin schedule is
    /// executed without materializing per-request entries (the ordering
    /// proof in DESIGN.md shows the wheel would deliver exactly that
    /// order), but the conservation counters still account one
    /// scheduled + delivered pair per virtual event.
    pub(crate) fn account_virtual(&mut self, events: u64) {
        self.scheduled += events;
        self.delivered += events;
    }

    /// Compat-mode bookkeeping: advance `now` directly to `tick`.
    ///
    /// # Panics
    /// Panics if `tick` would move time backwards.
    pub(crate) fn advance_to(&mut self, tick: u64) {
        assert!(tick >= self.now, "clock cannot run backwards: {tick} < {}", self.now);
        self.now = tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(i: usize) -> Event {
        Event::Timeout { proxy: i, units: 0 }
    }

    fn untag(e: Event) -> usize {
        match e {
            Event::Timeout { proxy, .. } => proxy,
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn fifo_within_a_tick() {
        let mut c = SimClock::event();
        for i in 0..5 {
            c.schedule_at(7, tag(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| c.pop()).map(untag).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.now(), 7);
    }

    #[test]
    fn delivery_spans_all_levels_in_tick_order() {
        // Ticks in level 0, level 1, and overflow, scheduled shuffled.
        let ticks =
            [3 * L1_SPAN + 17, 5, L0_SPAN + 3, 1, L1_SPAN - 1, 2 * L1_SPAN, L0_SPAN * 9 + 100];
        let mut c = SimClock::event();
        for (i, &t) in ticks.iter().enumerate() {
            c.schedule_at(t, tag(i));
        }
        let mut sorted: Vec<u64> = ticks.to_vec();
        sorted.sort_unstable();
        let mut seen = Vec::new();
        while let Some(e) = c.pop() {
            seen.push((c.now(), untag(e)));
        }
        assert_eq!(seen.len(), ticks.len());
        for (i, &(tick, tag_idx)) in seen.iter().enumerate() {
            assert_eq!(tick, sorted[i]);
            assert_eq!(ticks[tag_idx], tick);
        }
    }

    #[test]
    fn scheduling_during_delivery_at_the_same_tick_is_fifo() {
        let mut c = SimClock::event();
        c.schedule_at(4, tag(0));
        c.schedule_at(4, tag(1));
        assert_eq!(untag(c.pop().unwrap()), 0);
        // An event scheduled *at now* during the drain lands after the
        // already-queued same-tick events.
        c.schedule_at(4, tag(2));
        assert_eq!(untag(c.pop().unwrap()), 1);
        assert_eq!(untag(c.pop().unwrap()), 2);
        assert!(c.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut c = SimClock::event();
        c.schedule_at(10, tag(0));
        c.pop();
        c.schedule_at(3, tag(1));
    }

    #[test]
    fn counters_conserve() {
        let mut c = SimClock::compat();
        for i in 0..10 {
            c.schedule_at(i as u64 * 100, tag(i));
        }
        assert_eq!(c.scheduled(), 10);
        assert_eq!(c.pending(), 10);
        while c.pop().is_some() {}
        assert_eq!(c.delivered(), 10);
        assert!(c.is_empty());
        c.account_virtual(4);
        assert_eq!(c.scheduled(), 14);
        assert_eq!(c.delivered(), 14);
    }

    #[test]
    fn ticks_of_rounds_to_nearest() {
        assert_eq!(ticks_of(0.0), 0);
        assert_eq!(ticks_of(1.0), TICKS_PER_UNIT);
        assert_eq!(ticks_of(1.5), TICKS_PER_UNIT + TICKS_PER_UNIT / 2);
        assert_eq!(ticks_of(0.01), 0);
    }

    #[test]
    fn mode_labels_parse_round_trip() {
        for mode in [ClockMode::Compat, ClockMode::Event] {
            assert_eq!(mode.label().parse::<ClockMode>().unwrap(), mode);
        }
        assert!("banana".parse::<ClockMode>().is_err());
        assert_eq!(ClockMode::default(), ClockMode::Compat);
    }

    proptest::proptest! {
        /// Delivery order equals a stable sort by tick for arbitrary
        /// schedules spanning every wheel level, and the conservation
        /// counters balance.
        #[test]
        fn wheel_delivers_stable_tick_order(
            ticks in proptest::collection::vec(0u64..(3 * L1_SPAN), 1..200),
        ) {
            let mut c = SimClock::event();
            for (i, &t) in ticks.iter().enumerate() {
                c.schedule_at(t, tag(i));
            }
            let mut expect: Vec<(u64, usize)> =
                ticks.iter().copied().zip(0..).collect();
            expect.sort_by_key(|&(t, _)| t);
            let mut got = Vec::new();
            while let Some(e) = c.pop() {
                got.push((c.now(), untag(e)));
            }
            proptest::prop_assert_eq!(got, expect);
            proptest::prop_assert_eq!(c.delivered(), ticks.len() as u64);
            proptest::prop_assert!(c.is_empty());
        }
    }
}
