//! The event vocabulary of the discrete-event core.
//!
//! Everything the simulation does at a point in model time is one of
//! these variants, scheduled on a [`SimClock`](crate::clock::SimClock)
//! and handled by the [`Engine`](crate::engine::Engine) event loop (or by
//! the fault driver's loop in `fault.rs`, which adds [`Event::Fault`]
//! handling). The old inline driver collapsed all of these into
//! synchronous calls; the event core makes each one a first-class,
//! timestamped occurrence so non-uniform latencies, overlapping
//! admissions, and fault timing become schedule properties instead of
//! code paths.

use crate::net::HitClass;

/// One scheduled occurrence on the simulation clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// Request `index` of `proxy`'s trace arrives at the proxy cluster.
    ///
    /// Arrivals self-schedule: handling request `index` schedules request
    /// `index + 1` one arrival period later, which reproduces the classic
    /// round-robin interleave exactly (see `clock.rs` module docs).
    Arrival {
        /// Proxy cluster the request arrives at.
        proxy: usize,
        /// Index into that proxy's trace.
        index: usize,
    },
    /// A served request's response reaches the client.
    ///
    /// In [`ClockMode::Event`](crate::clock::ClockMode::Event) this is
    /// where the request's latency is recorded; in compat mode the
    /// completion is implicit in the analytic price charged at arrival.
    Completion {
        /// Proxy cluster that served the request.
        proxy: usize,
        /// Where the request was served from.
        class: HitClass,
        /// End-to-end latency in model units (queue wait + service).
        latency: f64,
    },
    /// A stalled protocol interaction (lost/duplicated/reordered
    /// transport messages) resolves after `units` detection-timeout
    /// periods of silence.
    Timeout {
        /// Proxy cluster whose cluster-internal messages stalled.
        proxy: usize,
        /// Timeout units the stall consumed (`units × t_timeout` model
        /// time).
        units: u64,
    },
    /// Entry `index` of the fault plan fires (crash / depart / rejoin /
    /// slow / partition / heal). Only the fault driver schedules these.
    Fault {
        /// Index into the plan's event list.
        index: usize,
    },
}

impl Event {
    /// Short label for traces and diagnostics.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Event::Arrival { .. } => "arrival",
            Event::Completion { .. } => "completion",
            Event::Timeout { .. } => "timeout",
            Event::Fault { .. } => "fault",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Event::Arrival { proxy: 0, index: 0 }.kind_label(), "arrival");
        assert_eq!(
            Event::Completion { proxy: 1, class: HitClass::Server, latency: 1.0 }.kind_label(),
            "completion"
        );
        assert_eq!(Event::Timeout { proxy: 0, units: 2 }.kind_label(), "timeout");
        assert_eq!(Event::Fault { index: 3 }.kind_label(), "fault");
    }
}
