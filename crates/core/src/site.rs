//! A proxy *site*: the proxy cache plus (optionally) its unified P2P
//! client-cache tier.
//!
//! For the NC-EC/SC-EC upper-bound schemes the paper "simulate\[s\] a P2P
//! client cache as one single cache whose size is the sum of all client
//! cache sizes in a client cluster" (§5.1), coordinated with the proxy so
//! the pair "appear as one unified cache" (§2). [`TwoTierLfuSite`] realizes
//! that: an exclusive two-level LFU hierarchy where frequency counts
//! survive tier transfers — evictions from the proxy tier demote into the
//! P2P tier, P2P-tier hits promote back — so membership of the combined
//! cache is exactly what a single LFU of the combined size would hold,
//! while the *tier* an object occupies determines its access latency.

use webcache_policy::{BoundedCache, LfuCache};
use webcache_workload::ObjectId;

/// Which tier of a site holds an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteTier {
    /// The proxy cache itself (latency `Tl`).
    Proxy,
    /// The unified P2P client cache (latency `Tl + Tp2p` locally).
    P2p,
}

/// Movement counters between a site's tiers, for observability: how much
/// churn the exclusive two-level hierarchy generates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierTraffic {
    /// P2P-tier hits that earned the object a proxy-tier slot.
    pub promotions: u64,
    /// Proxy-tier victims demoted into the P2P tier.
    pub demotions: u64,
    /// Objects pushed out of the site entirely (both tiers full).
    pub spills: u64,
}

/// Proxy cache plus optional unified P2P tier, LFU-managed.
#[derive(Clone, Debug)]
pub struct TwoTierLfuSite {
    proxy: LfuCache<ObjectId>,
    p2p: Option<LfuCache<ObjectId>>,
    traffic: TierTraffic,
}

impl TwoTierLfuSite {
    /// A site with a `proxy_capacity`-object proxy cache and, when
    /// `p2p_capacity > 0`, a unified P2P tier of that size.
    pub fn new(proxy_capacity: usize, p2p_capacity: usize) -> Self {
        TwoTierLfuSite {
            proxy: LfuCache::new(proxy_capacity.max(1)),
            p2p: (p2p_capacity > 0).then(|| LfuCache::new(p2p_capacity)),
            traffic: TierTraffic::default(),
        }
    }

    /// Tier-movement counters accumulated so far.
    pub fn traffic(&self) -> TierTraffic {
        self.traffic
    }

    /// Where `object` is resident, if anywhere (no side effects).
    pub fn tier_of(&self, object: ObjectId) -> Option<SiteTier> {
        if self.proxy.contains(object) {
            Some(SiteTier::Proxy)
        } else if self.p2p.as_ref().is_some_and(|c| c.contains(object)) {
            Some(SiteTier::P2p)
        } else {
            None
        }
    }

    /// Serves a *local* request: registers the access and, when the
    /// object's updated frequency earns a proxy-tier slot, promotes it
    /// (demoting the proxy victim into the P2P tier) — keeping the proxy
    /// tier the top of the unified LFU ranking. Returns the tier that
    /// served the request, or `None` on a miss.
    pub fn lookup(&mut self, object: ObjectId) -> Option<SiteTier> {
        if self.proxy.touch(object) {
            return Some(SiteTier::Proxy);
        }
        let p2p = self.p2p.as_mut()?;
        let freq = p2p.frequency(object)? + 1;
        // Promote when the object now outranks the proxy tier's victim
        // (ties go to the newer access, as in-cache LFU's stamp order).
        let deserves_proxy = self.proxy.len() < self.proxy.capacity()
            || freq >= self.proxy.min_frequency().unwrap_or(u64::MAX);
        if deserves_proxy {
            p2p.remove(object);
            self.traffic.promotions += 1;
            if let Some((victim, vf)) = self.proxy.insert_with_frequency(object, freq) {
                // Demotion cannot overflow: the P2P tier just lost `object`.
                let spilled =
                    self.p2p.as_mut().expect("p2p tier exists").insert_with_frequency(victim, vf);
                debug_assert!(spilled.is_none());
                self.traffic.demotions += 1;
            }
        } else {
            p2p.touch(object);
        }
        Some(SiteTier::P2p)
    }

    /// Registers an access from a *cooperating proxy* (SC/SC-EC remote
    /// hit): the serving cache sees the reference, but no promotion
    /// happens — the object was not requested by this site's clients.
    pub fn remote_touch(&mut self, object: ObjectId) {
        if !self.proxy.touch(object) {
            if let Some(p2p) = self.p2p.as_mut() {
                p2p.touch(object);
            }
        }
    }

    /// Admits a freshly fetched object into the site at LFU frequency 1,
    /// placing it by rank: into the proxy tier when there is room or the
    /// proxy victim is also at frequency 1 (the newer access outranks
    /// it), otherwise directly into the P2P tier. Demotions cascade; the
    /// object that left the site entirely, if any, is returned.
    pub fn admit(&mut self, object: ObjectId) -> Option<ObjectId> {
        debug_assert!(self.tier_of(object).is_none(), "admit is for misses");
        let Some(p2p) = self.p2p.as_mut() else {
            let spilled = self.proxy.insert_with_frequency(object, 1).map(|(k, _)| k);
            self.traffic.spills += spilled.is_some() as u64;
            return spilled;
        };
        let proxy_has_room = self.proxy.len() < self.proxy.capacity();
        let spilled = if proxy_has_room || self.proxy.min_frequency() <= Some(1) {
            let demoted = self.proxy.insert_with_frequency(object, 1)?;
            self.traffic.demotions += 1;
            p2p.insert_with_frequency(demoted.0, demoted.1).map(|(k, _)| k)
        } else {
            // Every proxy-tier resident outranks a fresh object; it joins
            // the P2P tier directly.
            p2p.insert_with_frequency(object, 1).map(|(k, _)| k)
        };
        self.traffic.spills += spilled.is_some() as u64;
        spilled
    }

    /// Objects resident in the proxy tier.
    pub fn proxy_len(&self) -> usize {
        self.proxy.len()
    }

    /// Objects resident in the P2P tier (0 without one).
    pub fn p2p_len(&self) -> usize {
        self.p2p.as_ref().map_or(0, LfuCache::len)
    }

    /// Combined resident count.
    pub fn len(&self) -> usize {
        self.proxy_len() + self.p2p_len()
    }

    /// True if the site caches nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_only_site() {
        let mut s = TwoTierLfuSite::new(2, 0);
        assert_eq!(s.admit(1), None);
        assert_eq!(s.admit(2), None);
        assert_eq!(s.lookup(1), Some(SiteTier::Proxy));
        // Full: admitting displaces the LFU victim out of the site.
        let out = s.admit(3);
        assert_eq!(out, Some(2));
        assert_eq!(s.tier_of(2), None);
    }

    #[test]
    fn eviction_demotes_into_p2p_tier() {
        let mut s = TwoTierLfuSite::new(1, 2);
        s.admit(1);
        s.admit(2); // 1 demoted to p2p
        assert_eq!(s.tier_of(2), Some(SiteTier::Proxy));
        assert_eq!(s.tier_of(1), Some(SiteTier::P2p));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn p2p_hit_promotes_and_keeps_frequency() {
        let mut s = TwoTierLfuSite::new(1, 2);
        s.admit(1); // proxy{1:f1}
        s.lookup(1); // f2
                     // A fresh object cannot outrank the f2 resident: straight to P2P.
        s.admit(2);
        assert_eq!(s.tier_of(1), Some(SiteTier::Proxy));
        assert_eq!(s.tier_of(2), Some(SiteTier::P2p));
        // Second access to 2 brings it to f2 — ties promote the newer.
        assert_eq!(s.lookup(2), Some(SiteTier::P2p));
        assert_eq!(s.tier_of(2), Some(SiteTier::Proxy));
        assert_eq!(s.tier_of(1), Some(SiteTier::P2p), "demoted with f2 intact");
        // 1 hits again (f3 > f2): promoted back, 2 demoted.
        assert_eq!(s.lookup(1), Some(SiteTier::P2p));
        assert_eq!(s.tier_of(1), Some(SiteTier::Proxy));
        // A cold admit never displaces the hot proxy resident.
        s.admit(3);
        assert_eq!(s.tier_of(1), Some(SiteTier::Proxy));
        assert_eq!(s.tier_of(3), Some(SiteTier::P2p));
    }

    #[test]
    fn cold_admits_do_not_thrash_hot_proxy_tier() {
        let mut s = TwoTierLfuSite::new(2, 4);
        s.admit(1);
        s.admit(2);
        for _ in 0..3 {
            s.lookup(1);
            s.lookup(2);
        }
        for cold in 10..30 {
            s.admit(cold);
            assert_eq!(s.tier_of(1), Some(SiteTier::Proxy), "after cold admit {cold}");
            assert_eq!(s.tier_of(2), Some(SiteTier::Proxy), "after cold admit {cold}");
        }
    }

    #[test]
    fn combined_membership_matches_unified_lfu() {
        // Drive a site (2+2) and a single LFU of size 4 with the same
        // access stream; resident *sets* must agree.
        let mut site = TwoTierLfuSite::new(2, 2);
        let mut unified = LfuCache::new(4);
        let stream = [1u32, 2, 3, 1, 2, 4, 5, 1, 6, 2, 7, 1, 3, 3, 8, 1, 2];
        for &o in &stream {
            if site.lookup(o).is_none() {
                site.admit(o);
            }
            if !unified.touch(o) {
                unified.insert(o);
            }
        }
        for o in 1u32..=8 {
            assert_eq!(
                site.tier_of(o).is_some(),
                unified.contains(o),
                "object {o}: site={:?} unified={}",
                site.tier_of(o),
                unified.contains(o)
            );
        }
    }

    #[test]
    fn spill_leaves_site_when_both_tiers_full() {
        let mut s = TwoTierLfuSite::new(1, 1);
        s.admit(1);
        s.admit(2);
        let out = s.admit(3);
        assert!(out.is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remote_touch_bumps_without_promotion() {
        let mut s = TwoTierLfuSite::new(1, 2);
        s.admit(1);
        s.admit(2); // 1 in p2p
        s.remote_touch(1);
        assert_eq!(s.tier_of(1), Some(SiteTier::P2p), "remote touch must not promote");
    }

    #[test]
    fn lookup_miss_is_none() {
        let mut s = TwoTierLfuSite::new(2, 2);
        assert_eq!(s.lookup(42), None);
        assert!(s.is_empty());
    }

    #[test]
    fn traffic_counts_tier_movements() {
        let mut s = TwoTierLfuSite::new(1, 1);
        assert_eq!(s.traffic(), TierTraffic::default());
        s.admit(1); // proxy has room: no movement
        s.admit(2); // 1 demoted into p2p
        assert_eq!(s.traffic(), TierTraffic { promotions: 0, demotions: 1, spills: 0 });
        s.admit(3); // demotes 2, spills 1 out of the site
        assert_eq!(s.traffic(), TierTraffic { promotions: 0, demotions: 2, spills: 1 });
        s.lookup(1); // miss: nothing
        let before = s.traffic();
        // A p2p hit that promotes bumps promotions (and demotes the proxy victim).
        s.lookup(2);
        let after = s.traffic();
        assert_eq!(after.promotions, before.promotions + 1);
        assert_eq!(after.demotions, before.demotions + 1);
    }

    #[test]
    fn proxy_only_spills_are_counted() {
        let mut s = TwoTierLfuSite::new(2, 0);
        s.admit(1);
        s.admit(2);
        s.admit(3);
        assert_eq!(s.traffic(), TierTraffic { promotions: 0, demotions: 0, spills: 1 });
    }
}
