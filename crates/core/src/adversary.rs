//! Adversary sweep harness: attacker fraction × audit rate.
//!
//! The lookup directory of §4.2 is built from **store receipts** — a
//! client machine's word that it now holds an object. The paper trusts
//! that word. This harness measures what the federation loses when a
//! fraction of machines stops being trustworthy (receipt forgers that
//! poison the directory with entries for objects they never held) and
//! how much of that loss the spot-check audit defense buys back: the
//! proxy challenges a seeded fraction of receipt senders to echo the
//! object checksum, strikes those that cannot, and quarantines repeat
//! offenders (see [`FaultAction::Forge`] and `ChurnConfig::audit_rate`).
//!
//! [`run_adversary`] drives one fault-free baseline plus one run per
//! (attacker fraction, audit rate) cell — same trace, same topology,
//! same attack schedule per fraction, so defended and undefended cells
//! differ **only** in the defense. The [`AdversaryReport`] carries hit
//! ratio, availability, mean latency and diversion rate per cell, each
//! cell's degradation against the baseline, and a per-fraction defense
//! factor (undefended ÷ defended hit-ratio degradation). Everything is
//! seeded and renders to bit-stable JSON/CSV (the adversary golden test
//! pins both clock modes).

use crate::clock::ClockMode;
use crate::error::SimError;
use crate::fault::{drive, ChurnConfig, DriveOutcome, FaultAction, FaultPlan};
use crate::net::HitClass;
use std::fmt::Write as _;
use webcache_primitives::seed::derive;
use webcache_workload::{ProWGen, ProWGenConfig};

/// Configuration of one adversary sweep.
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// Topology, workload, latency model and clock mode for every cell.
    /// The `plan`, `audit_rate` and `audit_strikes` fields are
    /// overwritten per cell and may be left at their defaults.
    pub base: ChurnConfig,
    /// Attacker fractions to sweep (fraction of the cluster turned into
    /// receipt forgers; 0 entries are folded into the baseline row).
    pub attacker_fracs: Vec<f64>,
    /// Audit rates to sweep (0 = undefended).
    pub audit_rates: Vec<f64>,
    /// Per-opportunity forge probability of each attacker, in (0, 1].
    pub forge_rate: f64,
    /// Failed audits before a node is quarantined.
    pub strikes: u32,
    /// Master seed for the attack schedule (label-separated from the
    /// trace seed and every other stream).
    pub seed: u64,
}

impl Default for AdversaryConfig {
    /// The committed-figure sweep: 5%/10%/20% forgers, undefended vs a
    /// 25% spot-check rate, in the paper's small-proxy regime (§5.2 —
    /// the federated client tier carries most of the hits, so its
    /// integrity is what the attack threatens).
    fn default() -> Self {
        AdversaryConfig {
            base: ChurnConfig {
                proxy_capacity: 20,
                client_cache_capacity: 8,
                ..ChurnConfig::default()
            },
            attacker_fracs: vec![0.05, 0.10, 0.20],
            audit_rates: vec![0.0, 0.25],
            forge_rate: 0.25,
            strikes: 3,
            seed: 0x00AD_5E11,
        }
    }
}

impl AdversaryConfig {
    /// Validates ranges.
    pub fn validate(&self) -> Result<(), SimError> {
        self.base.validate()?;
        if self.attacker_fracs.is_empty() {
            return Err(SimError::InvalidConfig("attacker_fracs must be non-empty".into()));
        }
        for f in &self.attacker_fracs {
            if !(0.0..1.0).contains(f) {
                return Err(SimError::InvalidConfig(format!(
                    "attacker fraction must be in [0, 1), got {f}"
                )));
            }
        }
        if self.audit_rates.is_empty() {
            return Err(SimError::InvalidConfig("audit_rates must be non-empty".into()));
        }
        for r in &self.audit_rates {
            if !(0.0..=1.0).contains(r) {
                return Err(SimError::InvalidConfig(format!(
                    "audit rate must be in [0, 1], got {r}"
                )));
            }
        }
        if !(self.forge_rate > 0.0 && self.forge_rate <= 1.0) {
            return Err(SimError::InvalidConfig(format!(
                "forge_rate must be in (0, 1], got {}",
                self.forge_rate
            )));
        }
        if self.strikes == 0 {
            return Err(SimError::InvalidConfig("strikes must be >= 1".into()));
        }
        Ok(())
    }

    /// The attack schedule for one fraction: `round(frac × cluster)`
    /// forge events spread through the first quarter of the trace, so
    /// the directory poison accumulates while most requests are still
    /// to come. The plan depends only on the fraction — every audit
    /// rate faces the identical attack.
    fn plan_for(&self, frac: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.seed = derive(self.seed, "adversary-sweep");
        let cluster = self.base.clients_per_cluster;
        let n = ((frac * cluster as f64).round() as usize).min(cluster.saturating_sub(1));
        let span = (self.base.requests as u64 / 4).max(1);
        let pm = ((self.forge_rate * 1000.0).round() as u16).max(1);
        for i in 0..n {
            let at = (i as u64 + 1) * span / (n as u64 + 1);
            plan.push(at, FaultAction::Forge(pm));
        }
        plan
    }
}

/// What one (attacker fraction, audit rate) cell measured.
#[derive(Clone, Debug, PartialEq)]
pub struct AdversaryCell {
    /// Fraction of the cluster scheduled to turn forger.
    pub attacker_frac: f64,
    /// Spot-check probability per store receipt (0 = undefended).
    pub audit_rate: f64,
    /// Machines actually converted (live targets existed).
    pub attackers: u64,
    /// Requests served from any cache, in percent of all requests.
    pub hit_ratio_percent: f64,
    /// Served / issued, in percent.
    pub availability_percent: f64,
    /// Mean end-to-end latency in milli-units.
    pub avg_latency_milli: u64,
    /// Destages diverted to a leaf-set neighbor, in percent of all
    /// destages (forger quarantines shrink the usable leaf sets).
    pub diverted_destage_percent: f64,
    /// Routed lookups whose object was gone — directory poison lands
    /// here as stale lookups.
    pub stale_lookups: u64,
    /// Possession challenges issued.
    pub audits_challenged: u64,
    /// Challenges the audited node failed.
    pub audits_failed: u64,
    /// Forged receipts exposed (directory entries purged).
    pub forged_receipts: u64,
    /// Nodes quarantined.
    pub quarantines: u64,
    /// Baseline hit ratio minus this cell's, in percentage points.
    pub hit_degradation_pts: f64,
    /// Latency inflation over the baseline, in percent.
    pub latency_delta_percent: f64,
    /// Diversion-rate shift against the baseline, in percentage points.
    pub diversion_delta_pts: f64,
}

/// Per-fraction defense summary: undefended vs best-defended cell.
#[derive(Clone, Debug, PartialEq)]
pub struct DefenseRow {
    /// The attacker fraction both cells ran.
    pub attacker_frac: f64,
    /// Hit-ratio degradation with audits off, in points.
    pub undefended_degradation_pts: f64,
    /// Hit-ratio degradation at the highest swept audit rate, in points.
    pub defended_degradation_pts: f64,
    /// Undefended ÷ defended degradation (the acceptance gate wants
    /// ≥ 2 at 10% forgers). Defended degradations below 0.01 points are
    /// clamped to 0.01 so the ratio stays finite.
    pub factor: f64,
}

/// Everything an adversary sweep measured.
#[derive(Clone, Debug, PartialEq)]
pub struct AdversaryReport {
    /// Requests per run.
    pub requests: u64,
    /// Overlay size.
    pub cluster: u64,
    /// Per-opportunity forge probability of each attacker.
    pub forge_rate: f64,
    /// Strike limit of the defense.
    pub strikes: u32,
    /// Clock mode every run used.
    pub clock: ClockMode,
    /// Master seed of the attack schedule.
    pub seed: u64,
    /// Fault-free baseline hit ratio, in percent.
    pub baseline_hit_ratio_percent: f64,
    /// Baseline mean latency in milli-units.
    pub baseline_avg_latency_milli: u64,
    /// One row per (fraction, audit rate), fractions outer, rates inner.
    pub cells: Vec<AdversaryCell>,
    /// One row per swept fraction, when both an undefended and a
    /// defended cell exist for it.
    pub defense: Vec<DefenseRow>,
}

fn hit_ratio_percent(out: &DriveOutcome) -> f64 {
    if out.metrics.requests == 0 {
        return 0.0;
    }
    let misses = out.metrics.count(HitClass::Server);
    (out.metrics.requests - misses) as f64 / out.metrics.requests as f64 * 100.0
}

fn diverted_percent(out: &DriveOutcome) -> f64 {
    if out.snapshot.destages == 0 {
        return 0.0;
    }
    out.snapshot.diverted_destages as f64 / out.snapshot.destages as f64 * 100.0
}

/// Runs the sweep: one fault-free baseline, then one drive per cell.
pub fn run_adversary(cfg: &AdversaryConfig) -> Result<AdversaryReport, SimError> {
    cfg.validate()?;
    let trace = ProWGen::new(ProWGenConfig {
        requests: cfg.base.requests,
        distinct_objects: cfg.base.distinct_objects,
        num_clients: cfg.base.trace_clients.max(1) as u32,
        seed: cfg.base.trace_seed,
        ..ProWGenConfig::default()
    })
    .generate();

    let cell_cfg = |plan: FaultPlan, audit_rate: f64| ChurnConfig {
        plan,
        audit_rate,
        audit_strikes: cfg.strikes,
        ..cfg.base.clone()
    };

    // The baseline is adversary-free, so the audit rate is irrelevant to
    // it (audits only ever chase receipts in adversarial runs): one
    // drive serves as the yardstick for every cell.
    let (baseline, _) = drive(&cell_cfg(FaultPlan::none(), 0.0), &trace, &FaultPlan::none())?;
    let base_hit = hit_ratio_percent(&baseline);
    let base_latency = (baseline.metrics.avg_latency() * 1000.0).round() as u64;
    let base_diverted = diverted_percent(&baseline);

    let mut fracs: Vec<f64> = cfg.attacker_fracs.iter().copied().filter(|f| *f > 0.0).collect();
    fracs.sort_by(|a, b| a.partial_cmp(b).expect("fractions are finite"));
    fracs.dedup();
    let mut rates = cfg.audit_rates.clone();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates.dedup();

    let mut cells = Vec::new();
    let mut defense = Vec::new();
    for frac in &fracs {
        let plan = cfg.plan_for(*frac);
        for rate in &rates {
            let churn = cell_cfg(plan.clone(), *rate);
            let (out, _) = drive(&churn, &trace, &plan)?;
            let hit = hit_ratio_percent(&out);
            let latency = (out.metrics.avg_latency() * 1000.0).round() as u64;
            let issued = cfg.base.requests as u64;
            cells.push(AdversaryCell {
                attacker_frac: *frac,
                audit_rate: *rate,
                attackers: out.forges,
                hit_ratio_percent: hit,
                availability_percent: if issued == 0 {
                    100.0
                } else {
                    out.metrics.requests as f64 / issued as f64 * 100.0
                },
                avg_latency_milli: latency,
                diverted_destage_percent: diverted_percent(&out),
                stale_lookups: out.snapshot.stale_lookups,
                audits_challenged: out.snapshot.audits_challenged,
                audits_failed: out.snapshot.audits_failed,
                forged_receipts: out.snapshot.forged_receipts,
                quarantines: out.snapshot.quarantines,
                hit_degradation_pts: base_hit - hit,
                latency_delta_percent: if base_latency == 0 {
                    0.0
                } else {
                    (latency as f64 / base_latency as f64 - 1.0) * 100.0
                },
                diversion_delta_pts: diverted_percent(&out) - base_diverted,
            });
        }
        let row_of = |rate: f64| {
            cells
                .iter()
                .rev()
                .find(|c| c.attacker_frac == *frac && c.audit_rate == rate)
                .map(|c| c.hit_degradation_pts)
        };
        if let (Some(undefended), Some(&best_rate)) =
            (row_of(0.0), rates.iter().rfind(|r| **r > 0.0))
        {
            let defended = row_of(best_rate).expect("cell just pushed");
            defense.push(DefenseRow {
                attacker_frac: *frac,
                undefended_degradation_pts: undefended,
                defended_degradation_pts: defended,
                factor: undefended.max(0.0) / defended.max(0.01),
            });
        }
    }

    Ok(AdversaryReport {
        requests: cfg.base.requests as u64,
        cluster: cfg.base.clients_per_cluster as u64,
        forge_rate: cfg.forge_rate,
        strikes: cfg.strikes,
        clock: cfg.base.clock,
        seed: cfg.seed,
        baseline_hit_ratio_percent: base_hit,
        baseline_avg_latency_milli: base_latency,
        cells,
        defense,
    })
}

impl AdversaryReport {
    /// Renders the report as a JSON document with a fixed field order
    /// (hand-rolled: the offline build has no serde_json). Bit-stable
    /// for a fixed config — the adversary golden test diffs it.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"requests\": {},", self.requests);
        let _ = writeln!(s, "  \"cluster\": {},", self.cluster);
        let _ = writeln!(s, "  \"forge_rate\": {:.4},", self.forge_rate);
        let _ = writeln!(s, "  \"strikes\": {},", self.strikes);
        let _ = writeln!(s, "  \"clock\": \"{}\",", self.clock.label());
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            s,
            "  \"baseline_hit_ratio_percent\": {:.4},",
            self.baseline_hit_ratio_percent
        );
        let _ =
            writeln!(s, "  \"baseline_avg_latency_milli\": {},", self.baseline_avg_latency_milli);
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"attacker_frac\": {:.4}, \"audit_rate\": {:.4}, \"attackers\": {}, \
                 \"hit_ratio_percent\": {:.4}, \"availability_percent\": {:.4}, \
                 \"avg_latency_milli\": {}, \"diverted_destage_percent\": {:.4}, \
                 \"stale_lookups\": {}, \"audits_challenged\": {}, \"audits_failed\": {}, \
                 \"forged_receipts\": {}, \"quarantines\": {}, \"hit_degradation_pts\": {:.4}, \
                 \"latency_delta_percent\": {:.4}, \"diversion_delta_pts\": {:.4}}}",
                c.attacker_frac,
                c.audit_rate,
                c.attackers,
                c.hit_ratio_percent,
                c.availability_percent,
                c.avg_latency_milli,
                c.diverted_destage_percent,
                c.stale_lookups,
                c.audits_challenged,
                c.audits_failed,
                c.forged_receipts,
                c.quarantines,
                c.hit_degradation_pts,
                c.latency_delta_percent,
                c.diversion_delta_pts,
            );
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"defense\": [\n");
        for (i, d) in self.defense.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"attacker_frac\": {:.4}, \"undefended_degradation_pts\": {:.4}, \
                 \"defended_degradation_pts\": {:.4}, \"factor\": {:.4}}}",
                d.attacker_frac, d.undefended_degradation_pts, d.defended_degradation_pts, d.factor,
            );
            s.push_str(if i + 1 < self.defense.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the per-cell rows as CSV (the committed figure format).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "attacker_frac,audit_rate,attackers,hit_ratio_percent,availability_percent,\
             avg_latency_milli,diverted_destage_percent,stale_lookups,audits_challenged,\
             audits_failed,forged_receipts,quarantines,hit_degradation_pts,\
             latency_delta_percent,diversion_delta_pts\n",
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:.4},{:.4},{},{:.4},{:.4},{},{:.4},{},{},{},{},{},{:.4},{:.4},{:.4}",
                c.attacker_frac,
                c.audit_rate,
                c.attackers,
                c.hit_ratio_percent,
                c.availability_percent,
                c.avg_latency_milli,
                c.diverted_destage_percent,
                c.stale_lookups,
                c.audits_challenged,
                c.audits_failed,
                c.forged_receipts,
                c.quarantines,
                c.hit_degradation_pts,
                c.latency_delta_percent,
                c.diversion_delta_pts,
            );
        }
        s
    }

    /// Renders an aligned text summary for terminals.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "baseline: hit ratio {:.2}%, avg latency {:.3}",
            self.baseline_hit_ratio_percent,
            self.baseline_avg_latency_milli as f64 / 1000.0
        );
        let _ = writeln!(
            s,
            "{:>9} {:>6} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6}",
            "forgers", "audit", "hit%", "deg.pts", "latency", "audits", "caught", "quar"
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:>8.0}% {:>6.2} {:>9.2} {:>9.2} {:>9.3} {:>7} {:>7} {:>6}",
                c.attacker_frac * 100.0,
                c.audit_rate,
                c.hit_ratio_percent,
                c.hit_degradation_pts,
                c.avg_latency_milli as f64 / 1000.0,
                c.audits_challenged,
                c.forged_receipts,
                c.quarantines,
            );
        }
        for d in &self.defense {
            let _ = writeln!(
                s,
                "defense at {:>2.0}% forgers: {:.2} pts undefended vs {:.2} defended ({:.1}x)",
                d.attacker_frac * 100.0,
                d.undefended_degradation_pts,
                d.defended_degradation_pts,
                d.factor,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AdversaryConfig {
        AdversaryConfig {
            base: ChurnConfig {
                requests: 6_000,
                distinct_objects: 400,
                trace_clients: 20,
                clients_per_cluster: 20,
                client_cache_capacity: 2,
                ..ChurnConfig::default()
            },
            attacker_fracs: vec![0.0, 0.2],
            audit_rates: vec![0.0, 1.0],
            forge_rate: 1.0,
            strikes: 2,
            seed: 99,
        }
    }

    #[test]
    fn sweep_is_deterministic_and_shaped() {
        let cfg = quick_cfg();
        let a = run_adversary(&cfg).expect("sweep runs");
        let b = run_adversary(&cfg).expect("sweep runs");
        assert_eq!(a.to_json(), b.to_json());
        // Zero fractions fold into the baseline: one fraction × two rates.
        assert_eq!(a.cells.len(), 2);
        assert_eq!(a.defense.len(), 1);
        for c in &a.cells {
            assert!((c.availability_percent - 100.0).abs() < 1e-9, "cascade always serves");
        }
    }

    #[test]
    fn defense_audits_catch_forgers_and_undefended_runs_stay_blind() {
        let report = run_adversary(&quick_cfg()).expect("sweep runs");
        let undefended = &report.cells[0];
        let defended = &report.cells[1];
        assert_eq!(undefended.audit_rate, 0.0);
        assert_eq!(undefended.audits_challenged, 0);
        assert_eq!(undefended.quarantines, 0);
        assert!(defended.audits_challenged > 0, "audits must fire at rate 1");
        assert!(defended.forged_receipts > 0, "a persistent forger must be caught");
        assert!(defended.quarantines > 0, "a caught forger must be quarantined");
        assert!(
            defended.hit_degradation_pts <= undefended.hit_degradation_pts,
            "the defense must not make the attack better: {:.3} vs {:.3}",
            defended.hit_degradation_pts,
            undefended.hit_degradation_pts
        );
    }

    #[test]
    fn renders_json_csv_and_table() {
        let report = run_adversary(&quick_cfg()).expect("sweep runs");
        let json = report.to_json();
        assert!(json.contains("\"cells\": ["));
        assert!(json.contains("\"defense\": ["));
        assert!(json.contains("\"baseline_hit_ratio_percent\""));
        let csv = report.to_csv();
        assert!(csv.starts_with("attacker_frac,audit_rate,"));
        assert_eq!(csv.lines().count(), 1 + report.cells.len());
        assert!(report.to_table().contains("defense at"));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = quick_cfg();
        cfg.attacker_fracs = vec![];
        assert!(run_adversary(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.attacker_fracs = vec![1.0];
        assert!(run_adversary(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.audit_rates = vec![1.5];
        assert!(run_adversary(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.forge_rate = 0.0;
        assert!(run_adversary(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.strikes = 0;
        assert!(run_adversary(&cfg).is_err());
    }
}
