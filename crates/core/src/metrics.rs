//! Run metrics and the paper's latency-gain measure.

use crate::net::HitClass;
use serde::{Deserialize, Serialize};
use webcache_p2p::MessageLedger;

/// Requests served per [`HitClass`], as a dense array.
///
/// `record()` runs once per simulated request; a `HashMap<String, u64>`
/// here cost a label-`String` allocation plus a SipHash per request. The
/// array indexes by [`HitClass::index`] instead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts([u64; HitClass::ALL.len()]);

impl ClassCounts {
    /// Requests served from `class`.
    pub fn get(&self, class: HitClass) -> u64 {
        self.0[class.index()]
    }

    /// Counts one request served from `class`.
    pub fn bump(&mut self, class: HitClass) {
        self.0[class.index()] += 1;
    }

    /// Iterates `(class, count)` pairs in [`HitClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (HitClass, u64)> + '_ {
        HitClass::ALL.iter().map(|&c| (c, self.get(c)))
    }
}

/// Aggregated results of one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Requests served.
    pub requests: u64,
    /// Sum of end-to-end latencies.
    pub total_latency: f64,
    /// Requests by serving class.
    pub by_class: ClassCounts,
    /// Merged P2P message counters (Hier-GD only; zero otherwise).
    pub messages: MessageLedger,
}

impl RunMetrics {
    /// Records one served request.
    pub fn record(&mut self, class: HitClass, latency: f64) {
        self.requests += 1;
        self.total_latency += latency;
        self.by_class.bump(class);
    }

    /// Mean end-to-end latency (0 when empty).
    pub fn avg_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency / self.requests as f64
        }
    }

    /// Requests served from `class`.
    pub fn count(&self, class: HitClass) -> u64 {
        self.by_class.get(class)
    }

    /// Fraction of requests served from `class`.
    pub fn fraction(&self, class: HitClass) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.count(class) as f64 / self.requests as f64
        }
    }

    /// Fraction of requests *not* sent to the origin server: the overall
    /// hit ratio of the whole caching system.
    pub fn hit_ratio(&self) -> f64 {
        1.0 - self.fraction(HitClass::Server)
    }
}

/// The paper's metric (§5.1): "the relative reduction in average access
/// latency with respect to the baseline NC scheme",
/// `1 − L_X / L_NC`, in percent.
pub fn latency_gain_percent(nc: &RunMetrics, x: &RunMetrics) -> f64 {
    let lnc = nc.avg_latency();
    if lnc <= 0.0 {
        return 0.0;
    }
    (1.0 - x.avg_latency() / lnc) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_averages() {
        let mut m = RunMetrics::default();
        m.record(HitClass::LocalProxy, 1.0);
        m.record(HitClass::Server, 21.0);
        assert_eq!(m.requests, 2);
        assert!((m.avg_latency() - 11.0).abs() < 1e-12);
        assert_eq!(m.count(HitClass::LocalProxy), 1);
        assert_eq!(m.count(HitClass::Server), 1);
        assert_eq!(m.count(HitClass::CoopProxy), 0);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((m.fraction(HitClass::Server) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.avg_latency(), 0.0);
        assert_eq!(m.hit_ratio(), 1.0 - 0.0);
        assert_eq!(latency_gain_percent(&m, &m), 0.0);
    }

    #[test]
    fn latency_gain_formula() {
        let mut nc = RunMetrics::default();
        nc.record(HitClass::Server, 20.0);
        let mut x = RunMetrics::default();
        x.record(HitClass::LocalProxy, 5.0);
        // 1 - 5/20 = 75%
        assert!((latency_gain_percent(&nc, &x) - 75.0).abs() < 1e-12);
        // A scheme identical to NC gains 0.
        assert!((latency_gain_percent(&nc, &nc)).abs() < 1e-12);
        // A worse scheme has negative gain.
        let mut bad = RunMetrics::default();
        bad.record(HitClass::Server, 40.0);
        assert!(latency_gain_percent(&nc, &bad) < 0.0);
    }
}
