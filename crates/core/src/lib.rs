//! **webcache-sim** — the trace-driven cooperative Web-caching simulator
//! reproducing Zhu & Hu, *Exploiting Client Caches: An Approach to Building
//! Large Web Caches* (ICPP 2003).
//!
//! The paper's claim: federating the browser caches of all clients in an
//! organization into a Pastry-based P2P cache behind each proxy makes
//! cooperative proxy caching dramatically more effective, especially when
//! proxy caches are small relative to the object universe; and a practical
//! algorithm — hierarchical greedy-dual (**Hier-GD**) — captures most of
//! that benefit.
//!
//! This crate assembles the pieces built in the sibling crates into the
//! seven caching schemes of §2–3 and the experiment harness of §5:
//!
//! | module | role |
//! |---|---|
//! | [`net`] | the Ts/Tc/Tl/Tp2p latency model (§5.1) + [`LatencyModel`] trait |
//! | [`clock`] | discrete-event clock: hierarchical time wheel, [`ClockMode`] |
//! | [`event`] | the event vocabulary (arrival / completion / timeout / fault) |
//! | [`engine`] | the [`Engine`] event loop driving every scheme |
//! | [`site`] | proxy + unified P2P tier (the §5.1 upper-bound model) |
//! | [`lfu_schemes`] | NC, NC-EC, SC, SC-EC (LFU replacement) |
//! | [`cost_benefit`] | FC, FC-EC (perfect-knowledge cost-benefit) |
//! | [`hiergd`] | Hier-GD over the real Pastry P2P client cache |
//! | [`metrics`] | average latency, hit breakdown, latency gain |
//! | [`config`] | §5.1 sizing rules and the scheme registry |
//! | [`fault`] | deterministic fault plans + the churn drill harness |
//! | [`chaos`] | seeded chaos explorer: random plans, oracles, shrinking |
//! | [`adversary`] | attacker-fraction × audit-rate sweep of the receipt defense |
//! | [`overload`] | flash-crowd intensity × defense sweep of the overload stack |
//! | [`error`] | the [`SimError`] type every fallible API returns |
//! | [`recorder`] | pluggable observability taps (stats, event log) |
//! | [`sweep`](crate::sweep()) | Rayon-parallel (scheme × size) grids for the figures |
//!
//! # Quick start
//!
//! ```
//! use webcache_sim::config::{run_experiment, ExperimentConfig, SchemeKind};
//! use webcache_workload::{ProWGen, ProWGenConfig};
//!
//! // Two statistically identical client clusters (one per proxy).
//! let traces: Vec<_> = (0..2)
//!     .map(|p| ProWGen::new(ProWGenConfig {
//!         requests: 20_000,
//!         distinct_objects: 1_000,
//!         seed: p,
//!         ..ProWGenConfig::default()
//!     }).generate())
//!     .collect();
//!
//! let nc = run_experiment(&ExperimentConfig::new(SchemeKind::Nc, 0.2), &traces).unwrap();
//! let cfg = ExperimentConfig::builder(SchemeKind::HierGd, 0.2)
//!     .clients_per_cluster(20) // keep the demo overlay small
//!     .build()
//!     .unwrap();
//! let hg = run_experiment(&cfg, &traces).unwrap();
//! let gain = webcache_sim::metrics::latency_gain_percent(&nc, &hg);
//! assert!(gain > 0.0);
//! ```
//!
//! # Observability
//!
//! Every run can carry a [`Recorder`]: [`StatsRecorder`] aggregates
//! per-class hit counters, log₂ latency/hop histograms, and P2P protocol
//! counters; [`EventLogRecorder`] keeps a bounded ring of raw events with
//! CSV/JSON export. The default [`NoopRecorder`] is statically compiled
//! out, so un-instrumented runs pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod chaos;
pub mod clock;
pub mod config;
pub mod cost_benefit;
pub mod durability;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod hiergd;
pub mod lfu_schemes;
pub mod metrics;
pub mod net;
pub mod overload;
pub mod recorder;
pub mod site;
pub mod squirrel;
pub mod sweep;
pub mod throughput;

pub use adversary::{run_adversary, AdversaryCell, AdversaryConfig, AdversaryReport, DefenseRow};
pub use chaos::{run_chaos, ChaosConfig, ChaosFailure, ChaosReport};
pub use clock::{ClockMode, SimClock, TICKS_PER_ROUND, TICKS_PER_UNIT};
pub use config::{
    build_engine, run_experiment, run_experiment_recorded, ExperimentConfig,
    ExperimentConfigBuilder, SchemeKind, Sizing,
};
pub use durability::{
    run_durability, DurabilityCell, DurabilityConfig, DurabilityReport, DurabilityRow,
};
pub use engine::{Admission, Engine, NoCacheEngine, SchemeEngine, ShedPolicy};
pub use error::SimError;
pub use event::Event;
pub use fault::{run_churn, ChurnConfig, ChurnReport, FaultAction, FaultEvent, FaultPlan};
pub use hiergd::{HierGdEngine, HierGdOptions};
pub use metrics::{latency_gain_percent, ClassCounts, RunMetrics};
pub use net::{ExplicitLatency, HitClass, LatencyModel, NetworkModel};
pub use overload::{run_overload, OverloadCell, OverloadConfig, OverloadReport, ResilienceRow};
pub use recorder::{
    EventLogRecorder, NoopRecorder, Recorder, SimEvent, SimEventKind, StatsRecorder, StatsSnapshot,
};
pub use site::{SiteTier, TierTraffic, TwoTierLfuSite};
pub use squirrel::SquirrelEngine;
pub use sweep::{gain_curve, sweep, sweep_recorded, SweepResult, PAPER_CACHE_FRACS};
pub use throughput::{measure_throughput, ThroughputPoint, ThroughputReport};
pub use webcache_p2p::{
    MessageClass, OverloadDefense, SendOutcome, TransportFaults, UnreliableTransport,
};
