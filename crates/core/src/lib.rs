//! **webcache-sim** — the trace-driven cooperative Web-caching simulator
//! reproducing Zhu & Hu, *Exploiting Client Caches: An Approach to Building
//! Large Web Caches* (ICPP 2003).
//!
//! The paper's claim: federating the browser caches of all clients in an
//! organization into a Pastry-based P2P cache behind each proxy makes
//! cooperative proxy caching dramatically more effective, especially when
//! proxy caches are small relative to the object universe; and a practical
//! algorithm — hierarchical greedy-dual (**Hier-GD**) — captures most of
//! that benefit.
//!
//! This crate assembles the pieces built in the sibling crates into the
//! seven caching schemes of §2–3 and the experiment harness of §5:
//!
//! | module | role |
//! |---|---|
//! | [`net`] | the Ts/Tc/Tl/Tp2p latency model (§5.1) |
//! | [`engine`] | trace-driven simulation loop |
//! | [`site`] | proxy + unified P2P tier (the §5.1 upper-bound model) |
//! | [`lfu_schemes`] | NC, NC-EC, SC, SC-EC (LFU replacement) |
//! | [`cost_benefit`] | FC, FC-EC (perfect-knowledge cost-benefit) |
//! | [`hiergd`] | Hier-GD over the real Pastry P2P client cache |
//! | [`metrics`] | average latency, hit breakdown, latency gain |
//! | [`config`] | §5.1 sizing rules and the scheme registry |
//! | [`sweep`](crate::sweep()) | Rayon-parallel (scheme × size) grids for the figures |
//!
//! # Quick start
//!
//! ```
//! use webcache_sim::config::{run_experiment, ExperimentConfig, SchemeKind};
//! use webcache_workload::{ProWGen, ProWGenConfig};
//!
//! // Two statistically identical client clusters (one per proxy).
//! let traces: Vec<_> = (0..2)
//!     .map(|p| ProWGen::new(ProWGenConfig {
//!         requests: 20_000,
//!         distinct_objects: 1_000,
//!         seed: p,
//!         ..ProWGenConfig::default()
//!     }).generate())
//!     .collect();
//!
//! let nc = run_experiment(&ExperimentConfig::new(SchemeKind::Nc, 0.2), &traces);
//! let mut cfg = ExperimentConfig::new(SchemeKind::HierGd, 0.2);
//! cfg.clients_per_cluster = 20; // keep the demo overlay small
//! let hg = run_experiment(&cfg, &traces);
//! let gain = webcache_sim::metrics::latency_gain_percent(&nc, &hg);
//! assert!(gain > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost_benefit;
pub mod engine;
pub mod hiergd;
pub mod lfu_schemes;
pub mod metrics;
pub mod net;
pub mod site;
pub mod squirrel;
pub mod sweep;
pub mod throughput;

pub use config::{build_engine, run_experiment, ExperimentConfig, SchemeKind, Sizing};
pub use engine::{run_engine, SchemeEngine};
pub use hiergd::{HierGdEngine, HierGdOptions};
pub use metrics::{latency_gain_percent, ClassCounts, RunMetrics};
pub use net::{HitClass, NetworkModel};
pub use squirrel::SquirrelEngine;
pub use sweep::{gain_curve, sweep, SweepResult, PAPER_CACHE_FRACS};
pub use throughput::{measure_throughput, ThroughputPoint, ThroughputReport};
