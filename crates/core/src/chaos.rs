//! Seeded chaos explorer: random fault plans, invariant oracles, and a
//! shrinker that minimizes failing plans to replayable reproducers.
//!
//! FoundationDB-style simulation testing for the P2P client cache: the
//! explorer generates hundreds of random — but fully seeded — fault
//! plans (crashes, departures, rejoins, slow nodes, network partitions
//! with their heals, plus message-level loss/duplication/reordering/
//! corruption through the unreliable transport), drives the Hier-GD
//! engine through each, and audits the end state with nine oracles:
//!
//! 1. **Structure** — [`check_invariants`]: the lookup directory, the
//!    resident stores, diversion pointers and replica tracking must
//!    reconcile exactly.
//! 2. **No duplicate entries** — no object is held as a *primary* copy
//!    by two machines at once (replica copies are tracked separately).
//! 3. **Replica floor** — with membership-stable plans, every primary
//!    keeps at least `min(k, live)` copies ([`check_replica_floor`];
//!    skipped under churn, where lazy repair legitimately lags).
//! 4. **Counter conservation** — per-class serve counts sum to the
//!    requests issued, detected + undetected crashes equal the crashes
//!    injected, stale lookups never exceed lookups, and dead-node
//!    timeouts never exceed total timeouts.
//! 5. **Availability** — every issued request was served (the cascade
//!    degrades to proxy → server; it never refuses).
//! 6. **Convergence** — after every cut has healed, the reconciled
//!    lookup directory must equal a single-authority rebuild from the
//!    stores ([`directory_divergence`]): no split-brain survivor may
//!    leak a ghost entry or shadow a resident object.
//! 7. **Quarantine soundness** — the spot-check audit defense may only
//!    expel machines that actually misbehaved (free-riders, receipt
//!    forgers, garbage responders scheduled by the plan's adversary
//!    verbs), every expelled machine must be fully out of the overlay,
//!    and without adversaries no audit traffic may exist at all.
//! 8. **Overload stability** — after a flash crowd ends, the system
//!    must return to its pre-spike operating point: watermark shedding
//!    may not still be engaged at the end of the run, and for defended
//!    plans with enough post-spike trace left, the tail window's mean
//!    latency must sit back at the pre-spike baseline. A run that stays
//!    degraded long after the load is gone is metastable — the classic
//!    overload failure mode the defenses exist to rule out.
//! 9. **No silent loss** — every object the cluster can no longer
//!    recover must be ledgered exactly once (`objects_lost` plus an
//!    `ObjectLost` event): an unrecoverable limbo entry that was never
//!    ledgered is a silent loss, and the event stream must agree with
//!    the ledger ([`silent_loss_audit`]). Correlated `domainfail@N:D`
//!    failures and `burst@N:K` simultaneous crashes exist precisely to
//!    pressure this guarantee.
//!
//! When an oracle fires, the explorer **shrinks** the failing plan:
//! repeatedly try dropping each scheduled event, zeroing then halving
//! each fault probability, narrowing each partition's span (pulling the
//! heal toward its cut), halving adversary rates, narrowing each flash
//! crowd (halving its span, then its intensity), disarming each
//! overload-defense knob, softening correlated failures (halving burst
//! sizes, doubling the domain count to shrink the doomed domain's blast
//! radius, disarming the repair pacer), and narrowing the request window
//! to just past the last event — keeping any candidate that still fails
//! — until a
//! fixed point or the run budget is reached. The result is a minimal
//! deterministic reproducer in the [`FaultPlan`] spec grammar, ready for
//! `webcache churn --plan '<spec>'` or a regression test.
//!
//! Everything keys off one master seed: plan `i` draws from
//! `derive_indexed(seed, "chaos-plan", i)`, so a failing index can be
//! regenerated without storing the plan.
//!
//! [`check_invariants`]: webcache_p2p::P2PClientCache::check_invariants
//! [`check_replica_floor`]: webcache_p2p::P2PClientCache::check_replica_floor
//! [`directory_divergence`]: webcache_p2p::P2PClientCache::directory_divergence
//! [`silent_loss_audit`]: webcache_p2p::P2PClientCache::silent_loss_audit

use crate::clock::ClockMode;
use crate::error::SimError;
use crate::fault::{drive, ChurnConfig, FaultAction, FaultPlan, OVERLOAD_WINDOW};
use crate::net::NetworkModel;
use std::fmt::Write as _;
use webcache_primitives::seed::{derive_indexed, SeedStream};
use webcache_workload::{ProWGen, ProWGenConfig, Trace};

/// Configuration of one chaos exploration.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Random plans to generate and run.
    pub plans: usize,
    /// Master seed; plan `i` derives its own stream from it.
    pub seed: u64,
    /// Requests per plan (kept small — each plan is a full drive).
    pub requests: usize,
    /// Distinct objects in the synthetic workload.
    pub distinct_objects: usize,
    /// Clients issuing requests in the trace.
    pub trace_clients: usize,
    /// Client cache machines in the cluster (overlay size).
    pub clients_per_cluster: usize,
    /// Proxy cache capacity in objects.
    pub proxy_capacity: usize,
    /// One client cache's capacity in objects.
    pub client_cache_capacity: usize,
    /// Leaf-set replication factor `k`.
    pub replication: usize,
    /// Upper bound on scheduled events per generated plan.
    pub max_events: usize,
    /// Probability that a plan schedules a partition/heal pair (1.0
    /// forces one into every plan — the CI partition smoke uses that).
    pub partition_prob: f64,
    /// Probability that a plan turns machines hostile (free-riders,
    /// receipt forgers, garbage responders; 1.0 forces adversaries into
    /// every plan — the CI adversary smoke uses that).
    pub adversary_prob: f64,
    /// Store-receipt audit probability for adversarial plans (the
    /// spot-check defense the quarantine oracle audits).
    pub audit_rate: f64,
    /// Probability that a plan schedules a flash-crowd spike (1.0 forces
    /// one into every plan — the CI overload smoke uses that). About
    /// half of flash plans also arm the overload defenses, so the
    /// stability oracle walks both sides of the metastability boundary.
    pub flash_prob: f64,
    /// Probability that a plan schedules a correlated failure — a
    /// `domainfail@N:D` over freshly carved failure domains, or a
    /// `burst@N:K` of simultaneous crashes (1.0 forces one into every
    /// plan — the CI durability smoke uses that). About half of burst
    /// plans also arm the proactive repair pacer, so the no-silent-loss
    /// oracle walks both reactive and proactive recovery.
    pub burst_prob: f64,
    /// Latency model.
    pub net: NetworkModel,
    /// Clock mode every plan's drive runs under.
    pub clock: ClockMode,
    /// Test-only: plant a ghost directory entry in every plan that
    /// schedules a crash, so the oracles *must* fire and the shrinker
    /// *must* reduce the plan — the explorer validating itself.
    pub sabotage: bool,
}

impl Default for ChaosConfig {
    /// Small per-plan drives so hundreds of plans fit in a CI smoke run.
    fn default() -> Self {
        ChaosConfig {
            plans: 200,
            seed: 42,
            requests: 2_500,
            distinct_objects: 400,
            trace_clients: 16,
            clients_per_cluster: 16,
            proxy_capacity: 50,
            client_cache_capacity: 4,
            replication: 2,
            max_events: 6,
            partition_prob: 0.5,
            adversary_prob: 0.25,
            audit_rate: 0.3,
            flash_prob: 0.25,
            burst_prob: 0.25,
            net: NetworkModel::default(),
            clock: ClockMode::default(),
            sabotage: false,
        }
    }
}

impl ChaosConfig {
    /// Validates ranges.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.plans == 0 {
            return Err(SimError::InvalidConfig("plans must be positive".into()));
        }
        if self.requests == 0 {
            return Err(SimError::InvalidConfig("requests must be positive".into()));
        }
        if self.clients_per_cluster == 0 {
            return Err(SimError::InvalidConfig("clients_per_cluster must be positive".into()));
        }
        if self.replication == 0 {
            return Err(SimError::InvalidConfig("replication factor must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.partition_prob) {
            return Err(SimError::InvalidConfig("partition_prob must be in [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.adversary_prob) {
            return Err(SimError::InvalidConfig("adversary_prob must be in [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.audit_rate) {
            return Err(SimError::InvalidConfig("audit_rate must be in [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.flash_prob) {
            return Err(SimError::InvalidConfig("flash_prob must be in [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.burst_prob) {
            return Err(SimError::InvalidConfig("burst_prob must be in [0, 1]".into()));
        }
        self.net.validate()
    }

    /// The churn-drill view of this configuration with `plan` installed.
    fn churn(&self, plan: &FaultPlan) -> ChurnConfig {
        ChurnConfig {
            requests: self.requests,
            distinct_objects: self.distinct_objects,
            trace_clients: self.trace_clients,
            clients_per_cluster: self.clients_per_cluster,
            proxy_capacity: self.proxy_capacity,
            client_cache_capacity: self.client_cache_capacity,
            replication: self.replication,
            trace_seed: derive_indexed(self.seed, "chaos-trace", 0),
            net: self.net,
            plan: plan.clone(),
            clock: self.clock,
            audit_rate: self.audit_rate,
            audit_strikes: 3,
            blind_placement: false,
        }
    }
}

/// One failing plan: what fired, and what it shrank to.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosFailure {
    /// Index of the generated plan (regenerable from the master seed).
    pub plan_index: u64,
    /// The original failing plan, in spec grammar.
    pub spec: String,
    /// Oracle findings on the original plan.
    pub violations: Vec<String>,
    /// The minimal reproducer the shrinker reached, in spec grammar.
    pub shrunk_spec: String,
    /// Oracle findings on the shrunk plan (still non-empty by
    /// construction).
    pub shrunk_violations: Vec<String>,
    /// Candidate runs the shrinker spent.
    pub shrink_runs: u64,
}

/// What a chaos exploration found.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosReport {
    /// Plans generated and run.
    pub plans: u64,
    /// Master seed.
    pub seed: u64,
    /// Plans whose oracles all passed.
    pub passed: u64,
    /// Failing plans, each with its shrunk reproducer.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// True when every plan passed every oracle.
    pub fn all_green(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report as a JSON document (hand-rolled: the offline
    /// build has no serde_json).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"plans\": {},", self.plans);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"passed\": {},", self.passed);
        let _ = writeln!(s, "  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"plan_index\": {},", f.plan_index);
            let _ = writeln!(s, "      \"spec\": \"{}\",", f.spec);
            let _ = writeln!(s, "      \"shrunk_spec\": \"{}\",", f.shrunk_spec);
            let _ = writeln!(s, "      \"shrink_runs\": {},", f.shrink_runs);
            s.push_str("      \"violations\": [");
            for (j, v) in f.violations.iter().enumerate() {
                let _ = write!(s, "{}\"{}\"", if j == 0 { "" } else { ", " }, v.replace('"', "'"));
            }
            s.push_str("]\n");
            let _ = writeln!(s, "    }}{}", if i + 1 == self.failures.len() { "" } else { "," });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders an aligned text summary for terminals.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{:<16} {:>8}", "plans", self.plans);
        let _ = writeln!(s, "{:<16} {:>8}", "passed", self.passed);
        let _ = writeln!(s, "{:<16} {:>8}", "failures", self.failures.len());
        for f in &self.failures {
            let _ = writeln!(s);
            let _ = writeln!(s, "plan #{} FAILED: {}", f.plan_index, f.spec);
            for v in &f.violations {
                let _ = writeln!(s, "  - {v}");
            }
            let _ = writeln!(s, "  shrunk ({} runs) to: {}", f.shrink_runs, f.shrunk_spec);
        }
        s
    }
}

/// Generates plan `i` of the exploration — pure function of the master
/// seed, so any failing index can be regenerated without storage.
pub fn generate_plan(cfg: &ChaosConfig, index: u64) -> FaultPlan {
    let mut draws = SeedStream::new(derive_indexed(cfg.seed, "chaos-plan", index));
    let mut plan = FaultPlan::none();
    plan.seed = draws.next_u64();

    let n_events = (draws.next_u64() as usize) % (cfg.max_events + 1);
    for _ in 0..n_events {
        let action = match draws.next_u64() % 4 {
            0 => FaultAction::Crash,
            1 => FaultAction::Depart,
            2 => FaultAction::Rejoin,
            _ => FaultAction::Slow,
        };
        let at = draws.next_u64() % cfg.requests.max(1) as u64;
        plan.push(at, action);
    }
    // Each fault dimension switches on independently (~40%), with a
    // magnitude low enough that most plans finish their drive in normal
    // operating range and high enough to exercise retry exhaustion.
    for p in [&mut plan.loss, &mut plan.mloss, &mut plan.dup, &mut plan.reorder, &mut plan.corrupt]
    {
        if draws.unit() < 0.4 {
            *p = draws.unit() * 0.3;
        }
    }
    // A partition/heal pair, in `partition_prob` of plans. These draws
    // come after everything above, so a pre-partition exploration at the
    // same master seed regenerates its plans bit-identically. The cut
    // lands in the first half of the trace and the heal a bounded span
    // later: most plans also exercise post-heal traffic.
    if draws.unit() < cfg.partition_prob {
        let half = (cfg.requests as u64 / 2).max(1);
        let cut_at = draws.next_u64() % half;
        let span = 1 + draws.next_u64() % half;
        let pct = 10 + (draws.next_u64() % 81) as u8;
        let heal_at = (cut_at + span).clamp(cut_at + 1, cfg.requests as u64);
        plan.push(cut_at, FaultAction::Partition(pct));
        plan.push(heal_at, FaultAction::Heal);
    }
    // Adversaries, in `adversary_prob` of plans. These draws come after
    // everything above (the partition pair included), so pre-adversary
    // explorations at the same master seed regenerate their plans
    // bit-identically. Up to three machines turn hostile, each early
    // enough in the trace to see real traffic afterwards.
    if draws.unit() < cfg.adversary_prob {
        let n = 1 + (draws.next_u64() as usize) % 3;
        let half = (cfg.requests as u64 / 2).max(1);
        for _ in 0..n {
            let kind = draws.next_u64() % 3;
            let at = draws.next_u64() % half;
            let action = match kind {
                0 => FaultAction::FreeRide,
                1 => FaultAction::Forge(1 + (draws.next_u64() % 1000) as u16),
                _ => FaultAction::Garble(1 + (draws.next_u64() % 1000) as u16),
            };
            plan.push(at, action);
        }
    }
    // Flash crowds, in `flash_prob` of plans. These draws come strictly
    // after everything above (the adversary batch included), so
    // pre-overload explorations at the same master seed regenerate their
    // plans bit-identically. The spike lands in the first half so most
    // plans also exercise post-spike recovery; about half of flash plans
    // arm the overload defenses, walking both sides of the metastability
    // boundary.
    if draws.unit() < cfg.flash_prob {
        let half = (cfg.requests as u64 / 2).max(1);
        let at = draws.next_u64() % half;
        let span = (1 + draws.next_u64() % half) as u32;
        let times = 2 + (draws.next_u64() % 15) as u16;
        plan.push(at, FaultAction::Spike { span, times });
        if draws.coin() == 1 {
            plan.shed_high = 8 + draws.next_u64() % 57;
            plan.shed_low = plan.shed_high / 4;
            plan.breaker = 2 + (draws.next_u64() % 6) as u32;
            plan.budget = 0.05 + draws.unit() * 0.45;
        }
    }
    // Correlated failures, in `burst_prob` of plans. These draws come
    // strictly after everything above (the flash block included), so
    // pre-durability explorations at the same master seed regenerate
    // their plans bit-identically. The failure lands in the first half
    // so most plans also exercise post-loss recovery; about half of
    // burst plans arm the proactive repair pacer, walking both reactive
    // and proactive recovery past the no-silent-loss oracle.
    if draws.unit() < cfg.burst_prob {
        let half = (cfg.requests as u64 / 2).max(1);
        let at = draws.next_u64() % half;
        if draws.coin() == 1 {
            plan.domains = 2 + (draws.next_u64() % 7) as u32;
            let doomed = (draws.next_u64() % u64::from(plan.domains)) as u32;
            plan.push(at, FaultAction::DomainFail(doomed));
        } else {
            let k = 2 + (draws.next_u64() % 4) as u32;
            plan.push(at, FaultAction::Burst(k));
        }
        if draws.coin() == 1 {
            plan.repair = 2 + (draws.next_u64() % 15) as u32;
        }
    }
    plan
}

/// Runs the nine oracles against one driven plan. Returns findings
/// (empty = all green).
fn run_oracles(
    cfg: &ChaosConfig,
    plan: &FaultPlan,
    trace: &Trace,
) -> Result<Vec<String>, SimError> {
    let churn = cfg.churn(plan);
    let (out, mut engine) = drive(&churn, trace, plan)?;
    if cfg.sabotage && plan.count(FaultAction::Crash) > 0 {
        // The planted bug: a directory entry with no backing copy, only
        // in plans that schedule a crash — so the minimal reproducer is
        // a single crash event.
        engine.debug_plant_ghost_entry(0, 0xBAD_C0DE);
    }
    let p2p = engine.p2p(0);
    let mut violations = Vec::new();

    // Oracle 1: structural reconciliation.
    for v in p2p.check_invariants() {
        violations.push(format!("structure: {v}"));
    }

    // Oracle 2: no object held as a primary by two machines at once
    // (a replica copy is listed as both `store` and `replica` at its
    // host, so primaries = store − replicas per node block).
    fn flush<'a>(
        store: &mut Vec<&'a str>,
        replicas: &mut std::collections::HashSet<&'a str>,
        primaries: &mut std::collections::HashMap<&'a str, u32>,
    ) {
        for obj in store.drain(..) {
            if !replicas.contains(obj) {
                *primaries.entry(obj).or_insert(0) += 1;
            }
        }
        replicas.clear();
    }
    let snapshot = p2p.contents_snapshot();
    let mut primaries: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    let mut store: Vec<&str> = Vec::new();
    let mut replicas: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for line in snapshot.lines() {
        if let Some(obj) = line.strip_prefix("  store ") {
            store.push(obj);
        } else if let Some(obj) = line.strip_prefix("  replica ") {
            replicas.insert(obj);
        } else {
            flush(&mut store, &mut replicas, &mut primaries);
        }
    }
    flush(&mut store, &mut replicas, &mut primaries);
    for (obj, n) in primaries {
        if n > 1 {
            violations.push(format!("duplicate: object {obj} is a primary on {n} machines"));
        }
    }

    // Oracle 3: replica floor, only meaningful while membership held
    // still (lazy repair legitimately lags under churn). Partition/heal
    // pairs count as stable: the heal sweep rebuilds every floor fresh
    // against the merged ring.
    // Adversary plans are non-stable too: a quarantine expels the node
    // mid-run, and lazy repair legitimately lags behind the expulsion.
    let stable = plan.events.iter().all(|e| {
        matches!(e.action, FaultAction::Slow | FaultAction::Partition(_) | FaultAction::Heal)
    });
    if stable {
        for v in p2p.check_replica_floor() {
            violations.push(format!("replica_floor: {v}"));
        }
    }

    // Oracle 4: counter conservation.
    let issued =
        if plan.window > 0 { plan.window.min(cfg.requests as u64) } else { cfg.requests as u64 };
    let by_class: u64 = crate::net::HitClass::ALL.iter().map(|c| out.metrics.count(*c)).sum();
    if by_class != out.metrics.requests {
        violations.push(format!(
            "conservation: per-class serves sum to {by_class} but {} requests recorded",
            out.metrics.requests
        ));
    }
    if out.detections.len() as u64 + out.undetected != out.crashes {
        violations.push(format!(
            "conservation: {} detected + {} undetected != {} crashes",
            out.detections.len(),
            out.undetected,
            out.crashes
        ));
    }
    if out.snapshot.stale_lookups > out.snapshot.lookups {
        violations.push(format!(
            "conservation: {} stale lookups exceed {} lookups",
            out.snapshot.stale_lookups, out.snapshot.lookups
        ));
    }
    if out.snapshot.dead_node_timeouts > out.snapshot.timeouts {
        violations.push(format!(
            "conservation: {} dead-node timeouts exceed {} timeouts",
            out.snapshot.dead_node_timeouts, out.snapshot.timeouts
        ));
    }

    // Oracle 5: total availability.
    if out.metrics.requests != issued {
        violations.push(format!(
            "availability: served {} of {issued} issued requests",
            out.metrics.requests
        ));
    }

    // Oracle 6: post-heal convergence — the drive auto-heals any open
    // cut, so by now the reconciled directory must equal a single-
    // authority rebuild from the resident stores.
    for v in p2p.directory_divergence() {
        violations.push(format!("convergence: {v}"));
    }

    // Oracle 7: quarantine soundness. The audit defense may only expel
    // machines that actually misbehaved, and an expelled machine must
    // be fully out of the overlay (its directory poison purged — the
    // structure and convergence oracles cover the entries themselves).
    // Without adversaries there must be no audit traffic at all.
    if plan.has_adversary() {
        for q in p2p.quarantined_ids() {
            if !p2p.behavior_of(q).is_misbehaving() {
                violations.push(format!("quarantine: honest node {q} was quarantined"));
            }
            if p2p.node_ids().any(|n| n == q) {
                violations.push(format!("quarantine: expelled node {q} is still a member"));
            }
        }
        if out.snapshot.quarantines == 0 && !p2p.quarantined_ids().is_empty() {
            violations.push(
                "quarantine: nodes are quarantined but no quarantine event was recorded".into(),
            );
        }
    } else if out.snapshot.audits_challenged != 0 || out.snapshot.quarantines != 0 {
        violations.push(format!(
            "quarantine: adversary-free plan produced {} audits and {} quarantines",
            out.snapshot.audits_challenged, out.snapshot.quarantines
        ));
    }

    // Oracle 8: overload stability. After a flash crowd ends the system
    // must return to its pre-spike operating point — a run that stays
    // degraded once the load is gone is metastable, the classic
    // overload failure mode the defenses exist to rule out.
    if plan.has_spike() {
        // Both checks apply only when bounded recovery is actually the
        // contract: the plan's scheduled events are spikes alone (a
        // crash, slow mark or adversary legitimately elevates the tail
        // or keeps the system saturated forever) and a shed defense is
        // armed (an undefended plan has no bounded-recovery contract —
        // that gap is exactly what `webcache overload` measures).
        let only_spikes = plan.events.iter().all(|e| matches!(e.action, FaultAction::Spike { .. }));
        let first_at = plan
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Spike { .. }))
            .map(|e| e.at)
            .min()
            .unwrap_or(0);
        let spike_end = plan
            .events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Spike { span, .. } => Some(e.at + u64::from(span)),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let win = OVERLOAD_WINDOW as u64;
        // (a) On a transport-fault-free plan the post-spike offered
        //     load is structurally serviceable: with arrivals back to
        //     one per round and no retry stalls, the backlog drains,
        //     so shed hysteresis still engaged at the end of the run
        //     means the defense itself got stuck in the degraded
        //     regime. Transport faults exempt the check — sustained
        //     retry stalls can legitimately hold service time above
        //     the arrival gap with no spike at all.
        if plan.shed_high > 0
            && only_spikes
            && !plan.has_transport()
            && plan.loss <= 0.0
            && spike_end + win / 2 <= issued
            && out.end_shedding
        {
            violations.push(
                "stability: load shedding still engaged at end of run (post-spike \
                 operation never returned to baseline)"
                    .into(),
            );
        }
        // (b) Windowed recovery, where the trace leaves room to judge
        //     it: a shed defense bounds the backlog, so once the spike
        //     is well past, the tail window's mean latency must sit
        //     back at the pre-spike baseline. Stationary transport
        //     faults are fine here — they elevate baseline and tail
        //     alike.
        let baseline_windows = ((first_at / win) as usize).min(out.windows.len());
        let full = (issued / win) as usize;
        if plan.shed_high > 0 && only_spikes && baseline_windows >= 1 && full >= 1 {
            let tail_start = (full as u64 - 1) * win;
            if tail_start >= spike_end + win / 2 && full <= out.windows.len() {
                let base = &out.windows[..baseline_windows];
                let base_reqs: u64 = base.iter().map(|w| w.requests).sum();
                let base_lat: u64 = base.iter().map(|w| w.latency_milli_sum).sum();
                let baseline = base_lat.checked_div(base_reqs).unwrap_or(0);
                let tail = &out.windows[full - 1];
                let tail_mean = tail.latency_milli_sum.checked_div(tail.requests).unwrap_or(0);
                let bound = baseline + baseline / 4 + 250;
                if baseline > 0 && tail_mean > bound {
                    violations.push(format!(
                        "stability: tail window mean latency {tail_mean} milli never \
                         recovered to the pre-spike baseline {baseline} milli (bound \
                         {bound}) after the flash crowd ended at request {spike_end}"
                    ));
                }
            }
        }
    }

    // Oracle 9: no silent loss. Runs unconditionally — the guarantee is
    // not gated on the durability knobs. Every object the cluster can no
    // longer recover must have been ledgered (`objects_lost` plus an
    // `ObjectLost` event) exactly once, and the event stream the
    // recorder saw must agree with the cache's own ledger. End-state
    // conservation in one line: nothing vanishes off the books.
    for v in p2p.silent_loss_audit() {
        violations.push(format!("silent_loss: {v}"));
    }
    let ledger_lost = p2p.ledger().objects_lost;
    if out.snapshot.objects_lost_permanent != ledger_lost {
        violations.push(format!(
            "silent_loss: recorder saw {} ObjectLost events but the ledger counts {}",
            out.snapshot.objects_lost_permanent, ledger_lost
        ));
    }

    Ok(violations)
}

/// Candidate-run budget per shrink (the shrinker stops improving once
/// spent; each candidate is a full drive).
const SHRINK_BUDGET: u64 = 128;

/// Minimizes a failing plan: repeatedly drop events, zero-then-halve
/// probabilities, and narrow the window, keeping any candidate that
/// still fails, until a fixed point or the budget runs out. Returns the
/// shrunk plan, its findings, and the runs spent.
pub fn shrink(
    cfg: &ChaosConfig,
    trace: &Trace,
    failing: &FaultPlan,
) -> Result<(FaultPlan, Vec<String>, u64), SimError> {
    let mut best = failing.clone();
    let mut best_violations = run_oracles(cfg, &best, trace)?;
    debug_assert!(!best_violations.is_empty(), "shrink() needs a failing plan");
    let mut runs = 0u64;

    let still_fails =
        |candidate: &FaultPlan, runs: &mut u64| -> Result<Option<Vec<String>>, SimError> {
            *runs += 1;
            let v = run_oracles(cfg, candidate, trace)?;
            Ok(if v.is_empty() { None } else { Some(v) })
        };

    loop {
        let mut improved = false;

        // Pass 1: drop each scheduled event in turn.
        let mut i = 0;
        while i < best.events.len() && runs < SHRINK_BUDGET {
            let mut candidate = best.clone();
            candidate.events.remove(i);
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: zero, then halve, each fault probability.
        for field in 0..5 {
            if runs >= SHRINK_BUDGET {
                break;
            }
            let get = |p: &FaultPlan| match field {
                0 => p.loss,
                1 => p.mloss,
                2 => p.dup,
                3 => p.reorder,
                _ => p.corrupt,
            };
            let set = |p: &mut FaultPlan, v: f64| match field {
                0 => p.loss = v,
                1 => p.mloss = v,
                2 => p.dup = v,
                3 => p.reorder = v,
                _ => p.corrupt = v,
            };
            if get(&best) <= 0.0 {
                continue;
            }
            let mut candidate = best.clone();
            set(&mut candidate, 0.0);
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            } else if runs < SHRINK_BUDGET {
                let mut candidate = best.clone();
                set(&mut candidate, get(&best) / 2.0);
                if let Some(v) = still_fails(&candidate, &mut runs)? {
                    best = candidate;
                    best_violations = v;
                    improved = true;
                }
            }
        }

        // Pass 3: narrow each partition's span — pull the heal halfway
        // toward its cut. A shorter split that still fails is a strictly
        // simpler reproducer (less divergence to wade through).
        let mut pi = 0;
        while pi < best.events.len() && runs < SHRINK_BUDGET {
            if !matches!(best.events[pi].action, FaultAction::Partition(_)) {
                pi += 1;
                continue;
            }
            let cut_at = best.events[pi].at;
            let heal =
                best.events.iter().position(|e| e.action == FaultAction::Heal && e.at > cut_at + 1);
            let Some(hi) = heal else {
                pi += 1;
                continue;
            };
            let mut candidate = best.clone();
            candidate.events[hi].at = cut_at + (best.events[hi].at - cut_at) / 2;
            candidate.events.sort_by_key(|e| e.at);
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            } else {
                pi += 1;
            }
        }

        // Pass 4: halve adversary rates — a weaker forger or garbler
        // that still trips the oracles is a strictly simpler reproducer
        // (fewer hostile acts to wade through in the event log).
        let mut ai = 0;
        while ai < best.events.len() && runs < SHRINK_BUDGET {
            let halved = match best.events[ai].action {
                FaultAction::Forge(pm) if pm > 1 => Some(FaultAction::Forge(pm / 2)),
                FaultAction::Garble(pm) if pm > 1 => Some(FaultAction::Garble(pm / 2)),
                _ => None,
            };
            let Some(action) = halved else {
                ai += 1;
                continue;
            };
            let mut candidate = best.clone();
            candidate.events[ai].action = action;
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            } else {
                ai += 1;
            }
        }

        // Pass 5: narrow flash crowds — halve each spike's span, then
        // its intensity (floored at the grammar's 2× minimum). A
        // shorter or gentler crowd that still trips the oracles is a
        // strictly simpler metastability reproducer.
        let mut si = 0;
        while si < best.events.len() && runs < SHRINK_BUDGET {
            let narrowed = match best.events[si].action {
                FaultAction::Spike { span, times } if span > 1 => {
                    Some(FaultAction::Spike { span: span / 2, times })
                }
                FaultAction::Spike { span, times } if times > 2 => {
                    Some(FaultAction::Spike { span, times: (times / 2).max(2) })
                }
                _ => None,
            };
            let Some(action) = narrowed else {
                si += 1;
                continue;
            };
            let mut candidate = best.clone();
            candidate.events[si].action = action;
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            } else {
                si += 1;
            }
        }

        // Pass 6: disarm each overload-defense knob in turn — a failure
        // that survives without the defense was never about the defense.
        for knob in 0..3 {
            if runs >= SHRINK_BUDGET {
                break;
            }
            let armed = match knob {
                0 => best.breaker > 0,
                1 => best.budget > 0.0,
                _ => best.shed_high > 0,
            };
            if !armed {
                continue;
            }
            let mut candidate = best.clone();
            match knob {
                0 => candidate.breaker = 0,
                1 => candidate.budget = 0.0,
                _ => {
                    candidate.shed_high = 0;
                    candidate.shed_low = 0;
                }
            }
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            }
        }

        // Pass 7: soften correlated failures — halve each burst's size
        // (floored at the grammar's 2 minimum), double the domain count
        // (shrinking the doomed domain's share of the cluster), disarm
        // the repair pacer, and drop a dangling domains= key once no
        // domainfail remains. A smaller blast radius that still trips
        // the oracles is a strictly simpler reproducer.
        let mut bi = 0;
        while bi < best.events.len() && runs < SHRINK_BUDGET {
            let softened = match best.events[bi].action {
                FaultAction::Burst(k) if k > 2 => Some(FaultAction::Burst((k / 2).max(2))),
                _ => None,
            };
            let Some(action) = softened else {
                bi += 1;
                continue;
            };
            let mut candidate = best.clone();
            candidate.events[bi].action = action;
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            } else {
                bi += 1;
            }
        }
        let has_domainfail =
            best.events.iter().any(|e| matches!(e.action, FaultAction::DomainFail(_)));
        if runs < SHRINK_BUDGET && has_domainfail && best.domains > 0 && best.domains <= 32 {
            let mut candidate = best.clone();
            candidate.domains = best.domains * 2;
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            }
        }
        if runs < SHRINK_BUDGET && best.repair > 0 {
            let mut candidate = best.clone();
            candidate.repair = 0;
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            }
        }
        if runs < SHRINK_BUDGET && !has_domainfail && best.domains > 0 {
            let mut candidate = best.clone();
            candidate.domains = 0;
            if let Some(v) = still_fails(&candidate, &mut runs)? {
                best = candidate;
                best_violations = v;
                improved = true;
            }
        }

        // Pass 8: narrow the request window to just past the last event.
        if runs < SHRINK_BUDGET {
            if let Some(last_at) = best.events.iter().map(|e| e.at).max() {
                let narrowed = last_at + 64;
                let current = if best.window > 0 { best.window } else { cfg.requests as u64 };
                if narrowed < current {
                    let mut candidate = best.clone();
                    candidate.window = narrowed;
                    if let Some(v) = still_fails(&candidate, &mut runs)? {
                        best = candidate;
                        best_violations = v;
                        improved = true;
                    }
                }
            }
        }

        if !improved || runs >= SHRINK_BUDGET {
            break;
        }
    }
    Ok((best, best_violations, runs))
}

/// Runs the full exploration: generate `cfg.plans` seeded plans, drive
/// each, audit with the oracles, and shrink every failure to a minimal
/// replayable spec.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, SimError> {
    cfg.validate()?;
    let trace = ProWGen::new(ProWGenConfig {
        requests: cfg.requests,
        distinct_objects: cfg.distinct_objects,
        num_clients: cfg.trace_clients.max(1) as u32,
        seed: derive_indexed(cfg.seed, "chaos-trace", 0),
        ..ProWGenConfig::default()
    })
    .generate();

    let mut report =
        ChaosReport { plans: cfg.plans as u64, seed: cfg.seed, passed: 0, failures: Vec::new() };
    for index in 0..cfg.plans as u64 {
        let plan = generate_plan(cfg, index);
        let violations = run_oracles(cfg, &plan, &trace)?;
        if violations.is_empty() {
            report.passed += 1;
            continue;
        }
        let (shrunk, shrunk_violations, shrink_runs) = shrink(cfg, &trace, &plan)?;
        report.failures.push(ChaosFailure {
            plan_index: index,
            spec: plan.to_spec(),
            violations,
            shrunk_spec: shrunk.to_spec(),
            shrunk_violations,
            shrink_runs,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ChaosConfig {
        // Tiny drives: the unit tests exercise the machinery, not scale.
        ChaosConfig {
            plans: 12,
            requests: 600,
            distinct_objects: 120,
            clients_per_cluster: 12,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn plan_generation_is_deterministic_and_varied() {
        let cfg = quick_cfg();
        let a: Vec<FaultPlan> = (0..8).map(|i| generate_plan(&cfg, i)).collect();
        let b: Vec<FaultPlan> = (0..8).map(|i| generate_plan(&cfg, i)).collect();
        assert_eq!(a, b);
        // Not all plans identical, and events land inside the trace.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        for plan in &a {
            // A partition pair (+2), an adversary batch (+3), a flash
            // crowd (+1) and a correlated failure (+1) ride on top of
            // the base event budget.
            assert!(plan.events.len() <= cfg.max_events + 7);
            for e in &plan.events {
                assert!(e.at < cfg.requests as u64);
            }
            for p in [plan.loss, plan.mloss, plan.dup, plan.reorder, plan.corrupt] {
                assert!((0.0..1.0).contains(&p));
            }
        }
    }

    #[test]
    fn generated_plans_round_trip_their_spec() {
        let cfg = quick_cfg();
        for i in 0..8 {
            let plan = generate_plan(&cfg, i);
            let reparsed: FaultPlan = plan.to_spec().parse().expect("generated spec parses");
            assert_eq!(reparsed.events, plan.events, "plan {i}");
            assert_eq!(reparsed.seed, plan.seed, "plan {i}");
        }
    }

    #[test]
    fn healthy_exploration_is_all_green() {
        let report = run_chaos(&quick_cfg()).expect("chaos runs");
        assert!(report.all_green(), "unexpected failures: {:#?}", report.failures);
        assert_eq!(report.passed, report.plans);
    }

    #[test]
    fn forced_partitions_pair_every_plan_and_stay_green() {
        let cfg = ChaosConfig { partition_prob: 1.0, ..quick_cfg() };
        for i in 0..cfg.plans as u64 {
            let plan = generate_plan(&cfg, i);
            assert!(plan.has_partition(), "plan {i} must schedule a cut");
            let cut_at = plan
                .events
                .iter()
                .find(|e| matches!(e.action, FaultAction::Partition(_)))
                .map(|e| e.at)
                .unwrap();
            assert!(
                plan.events.iter().any(|e| e.action == FaultAction::Heal && e.at > cut_at),
                "plan {i} must schedule a heal after its cut: {}",
                plan.to_spec()
            );
        }
        let report = run_chaos(&cfg).expect("chaos runs");
        assert!(report.all_green(), "unexpected failures: {:#?}", report.failures);
    }

    #[test]
    fn zero_partition_prob_generates_no_cuts() {
        let cfg = ChaosConfig { partition_prob: 0.0, ..quick_cfg() };
        for i in 0..32 {
            assert!(!generate_plan(&cfg, i).has_partition());
        }
    }

    #[test]
    fn forced_adversaries_infest_every_plan_and_stay_green() {
        let cfg = ChaosConfig { adversary_prob: 1.0, ..quick_cfg() };
        for i in 0..cfg.plans as u64 {
            let plan = generate_plan(&cfg, i);
            assert!(plan.has_adversary(), "plan {i} must schedule an adversary");
            // Forge/garble rates must survive the spec round trip.
            let reparsed: FaultPlan = plan.to_spec().parse().expect("adversary spec parses");
            assert_eq!(reparsed.events, plan.events, "plan {i}: {}", plan.to_spec());
        }
        let report = run_chaos(&cfg).expect("chaos runs");
        assert!(report.all_green(), "unexpected failures: {:#?}", report.failures);
    }

    #[test]
    fn zero_adversary_prob_generates_no_adversaries() {
        let cfg = ChaosConfig { adversary_prob: 0.0, ..quick_cfg() };
        for i in 0..32 {
            assert!(!generate_plan(&cfg, i).has_adversary());
        }
    }

    #[test]
    fn forced_flash_crowds_spike_every_plan_and_stay_green() {
        for clock in [ClockMode::Compat, ClockMode::Event] {
            let cfg = ChaosConfig { flash_prob: 1.0, clock, ..quick_cfg() };
            for i in 0..cfg.plans as u64 {
                let plan = generate_plan(&cfg, i);
                assert!(plan.has_spike(), "plan {i} must schedule a spike");
                // Spike spans and defense keys must survive the round trip.
                let reparsed: FaultPlan = plan.to_spec().parse().expect("flash spec parses");
                assert_eq!(reparsed, plan, "plan {i}: {}", plan.to_spec());
            }
            let report = run_chaos(&cfg).expect("chaos runs");
            assert!(report.all_green(), "unexpected {clock:?} failures: {:#?}", report.failures);
        }
    }

    #[test]
    fn zero_flash_prob_generates_no_spikes_or_defenses() {
        let cfg = ChaosConfig { flash_prob: 0.0, ..quick_cfg() };
        for i in 0..32 {
            let plan = generate_plan(&cfg, i);
            assert!(!plan.has_spike());
            assert!(!plan.has_overload_defense());
        }
    }

    #[test]
    fn forced_bursts_hit_every_plan_and_stay_green() {
        for clock in [ClockMode::Compat, ClockMode::Event] {
            let cfg = ChaosConfig { burst_prob: 1.0, clock, ..quick_cfg() };
            for i in 0..cfg.plans as u64 {
                let plan = generate_plan(&cfg, i);
                assert!(plan.has_durability(), "plan {i} must schedule a correlated failure");
                assert!(
                    plan.events.iter().any(|e| matches!(
                        e.action,
                        FaultAction::DomainFail(_) | FaultAction::Burst(_)
                    )),
                    "plan {i}: {}",
                    plan.to_spec()
                );
                // Domain counts, burst sizes and the repair knob must
                // survive the spec round trip.
                let reparsed: FaultPlan = plan.to_spec().parse().expect("burst spec parses");
                assert_eq!(reparsed, plan, "plan {i}: {}", plan.to_spec());
            }
            let report = run_chaos(&cfg).expect("chaos runs");
            assert!(report.all_green(), "unexpected {clock:?} failures: {:#?}", report.failures);
        }
    }

    #[test]
    fn zero_burst_prob_generates_no_correlated_failures() {
        let cfg = ChaosConfig { burst_prob: 0.0, ..quick_cfg() };
        for i in 0..32 {
            let plan = generate_plan(&cfg, i);
            assert_eq!(plan.domains, 0);
            assert_eq!(plan.repair, 0);
            assert!(!plan
                .events
                .iter()
                .any(|e| matches!(e.action, FaultAction::DomainFail(_) | FaultAction::Burst(_))));
        }
    }

    #[test]
    fn sabotage_is_caught_and_shrinks_to_a_minimal_crash_plan() {
        let cfg = ChaosConfig { sabotage: true, ..quick_cfg() };
        let report = run_chaos(&cfg).expect("chaos runs");
        assert!(!report.all_green(), "sabotage must trip the structure oracle");
        for f in &report.failures {
            // The planted ghost entry fires only with a crash scheduled,
            // so the minimal reproducer is exactly one crash and no
            // fault probabilities.
            let shrunk: FaultPlan = f.shrunk_spec.parse().expect("shrunk spec replays");
            assert_eq!(shrunk.count(FaultAction::Crash), 1, "shrunk: {}", f.shrunk_spec);
            assert_eq!(shrunk.events.len(), 1, "shrunk: {}", f.shrunk_spec);
            assert_eq!(shrunk.loss, 0.0);
            assert_eq!(shrunk.mloss, 0.0);
            assert!(!f.shrunk_violations.is_empty());
            assert!(f.shrink_runs > 0 && f.shrink_runs <= SHRINK_BUDGET);
            assert!(f.violations.iter().any(|v| v.starts_with("structure:")));
        }
    }

    #[test]
    fn shrunk_spec_replays_to_the_same_violation() {
        let cfg = ChaosConfig { sabotage: true, ..quick_cfg() };
        let report = run_chaos(&cfg).expect("chaos runs");
        let failure = report.failures.first().expect("sabotage produced a failure");
        let trace = ProWGen::new(ProWGenConfig {
            requests: cfg.requests,
            distinct_objects: cfg.distinct_objects,
            num_clients: cfg.trace_clients.max(1) as u32,
            seed: derive_indexed(cfg.seed, "chaos-trace", 0),
            ..ProWGenConfig::default()
        })
        .generate();
        let shrunk: FaultPlan = failure.shrunk_spec.parse().expect("spec parses");
        let replayed = run_oracles(&cfg, &shrunk, &trace).expect("replay runs");
        assert_eq!(replayed, failure.shrunk_violations, "replay must be deterministic");
    }

    #[test]
    fn report_renders_json_and_table() {
        let cfg = ChaosConfig { sabotage: true, plans: 6, ..quick_cfg() };
        let report = run_chaos(&cfg).expect("chaos runs");
        let json = report.to_json();
        assert!(json.contains("\"plans\": 6"));
        assert!(json.contains("\"failures\": ["));
        assert!(json.contains("\"shrunk_spec\""));
        let table = report.to_table();
        assert!(table.contains("failures"));
        assert!(table.contains("shrunk"));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = quick_cfg();
        cfg.plans = 0;
        assert!(run_chaos(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.replication = 0;
        assert!(run_chaos(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.partition_prob = 1.5;
        assert!(run_chaos(&cfg).is_err());
    }
}

/// Regression corpus: shrunk specs from real explorer finds, replayed
/// against the default chaos configuration. Each entry is the minimal
/// plan the shrinker produced for a bug that has since been fixed —
/// exactly the workflow the explorer exists for.
#[cfg(test)]
mod regressions {
    use super::*;
    use std::str::FromStr;

    /// Found by `webcache chaos --plans 200 --seed 42` (plan #126).
    /// A graceful departure handed its primaries off *before* rewiring
    /// the objects it had diverted to neighbor hosts; when a hand-off
    /// insertion evicted one of those diverted objects, the eviction
    /// bookkeeping could not reach the departed owner, so the late
    /// rewire resurrected the directory entry and re-tracked a replica
    /// set for an object no longer resident anywhere. Needs message
    /// loss to line the stores up — exactly the kind of state only a
    /// seeded explorer walks into.
    #[test]
    fn depart_handoff_eviction_of_diverted_object() {
        let cfg = ChaosConfig::default();
        let trace = ProWGen::new(ProWGenConfig {
            requests: cfg.requests,
            distinct_objects: cfg.distinct_objects,
            num_clients: cfg.trace_clients.max(1) as u32,
            seed: derive_indexed(cfg.seed, "chaos-trace", 0),
            ..ProWGenConfig::default()
        })
        .generate();
        let plan = FaultPlan::from_str(concat!(
            "depart@765,rejoin@984,slow@1080,crash@1484,depart@2096,",
            "mloss=0.28660599939080533,window=2160,seed=6367027891551064294",
        ))
        .unwrap();
        let violations = run_oracles(&cfg, &plan, &trace).unwrap();
        assert!(violations.is_empty(), "violations: {violations:#?}");
    }

    /// Found by the forced-adversary explorer test (adversary_prob 1.0,
    /// quick config). A garbler on the two-machine A side of a cut
    /// collected its third audit strike mid-partition; the quarantine
    /// expelled island A's last machine, so the next proxy destage
    /// routed across the cut and landed an object on an island-B store
    /// the B index had never seen. Quarantine now defers while the
    /// expulsion would empty island A, mirroring the crash/depart rule.
    #[test]
    fn quarantine_never_empties_island_a() {
        let cfg = ChaosConfig {
            plans: 1,
            requests: 600,
            distinct_objects: 120,
            clients_per_cluster: 12,
            ..ChaosConfig::default()
        };
        let trace = ProWGen::new(ProWGenConfig {
            requests: cfg.requests,
            distinct_objects: cfg.distinct_objects,
            num_clients: cfg.trace_clients.max(1) as u32,
            seed: derive_indexed(cfg.seed, "chaos-trace", 0),
            ..ProWGenConfig::default()
        })
        .generate();
        let plan = FaultPlan::from_str(
            "garble@48:0.988,crash@85,partition@274{17|83},window=338,seed=8897274319915659806",
        )
        .unwrap();
        let violations = run_oracles(&cfg, &plan, &trace).unwrap();
        assert!(violations.is_empty(), "violations: {violations:#?}");
    }
}
