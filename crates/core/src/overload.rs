//! Overload sweep harness: flash-crowd intensity × defense config.
//!
//! A flash crowd compresses the arrival schedule (see
//! [`FaultAction::Spike`]); under the event clock the proxy's backlog
//! then grows faster than it drains, latency climbs without bound, and
//! — the metastable failure mode — the backlog can outlive the spike
//! itself. The overload defenses bound that regime: per-destination
//! circuit breakers and retry budgets stop timeout-priced retry storms
//! at the transport, and watermark load shedding degrades background
//! work to the origin until the backlog drains (see
//! [`FaultPlan::overload_defense`] and [`crate::engine::ShedPolicy`]).
//!
//! [`run_overload`] drives one fault-free baseline plus two runs per
//! swept intensity — defenses off ("naive") and defenses on — over the
//! same trace and the same spike, so each pair differs **only** in the
//! defense. The [`OverloadReport`] carries goodput, mean and p99
//! latency, shed/degrade fractions and the recovery time back to 95% of
//! baseline goodput after the spike ends, plus a per-intensity
//! [`ResilienceRow`] comparing the naive and defended runs (the
//! committed-figure gate wants the defended run to recover and the
//! naive run to be ≥ 2× worse on recovery time or goodput). Everything
//! is seeded and renders to bit-stable JSON/CSV (the overload golden
//! test pins both clock modes).
//!
//! **Goodput** here is latency-discounted useful service: a window of
//! `OVERLOAD_WINDOW` (512) requests contributes its non-degraded requests
//! scaled by `min(1, baseline_mean / window_mean)` — service at
//! baseline speed counts in full, service at 4× baseline latency counts
//! a quarter. Degraded-to-origin requests never count: they were shed.

use crate::clock::ClockMode;
use crate::error::SimError;
use crate::fault::{drive, ChurnConfig, DriveOutcome, FaultAction, FaultPlan, OVERLOAD_WINDOW};
use crate::net::NetworkModel;
use std::fmt::Write as _;
use webcache_primitives::seed::derive;
use webcache_workload::{ProWGen, ProWGenConfig};

/// Configuration of one overload sweep.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Topology, workload, latency model and clock mode for every cell.
    /// The `plan` field is overwritten per cell and may be left at its
    /// default.
    pub base: ChurnConfig,
    /// Flash-crowd intensities to sweep (arrival-rate multipliers, each
    /// ≥ 2).
    pub intensities: Vec<u16>,
    /// Request index where every cell's spike starts.
    pub spike_at: u64,
    /// Spike length in requests.
    pub spike_span: u32,
    /// Defended cells: breaker trip threshold (consecutive
    /// timeout-priced failures).
    pub breaker: u32,
    /// Defended cells: retry budget as a fraction of successful traffic,
    /// in (0, 1].
    pub budget: f64,
    /// Defended cells: shedding engages at this backlog (rounds).
    pub shed_high: u64,
    /// Defended cells: shedding disengages at this backlog (rounds).
    pub shed_low: u64,
    /// Master seed for the sweep's fault plans (label-separated from the
    /// trace seed and every other stream).
    pub seed: u64,
}

impl Default for OverloadConfig {
    /// The committed-figure sweep: 4×/8×/16× flash crowds over a
    /// quarter of the trace, naive vs the full defense stack, under the
    /// event clock (the analytic clock has no queue to overload — the
    /// golden test still pins its bytes). The latency model is the
    /// paper's scaled down 16× (see [`NetworkModel::scaled`]): ratios
    /// are preserved, but the proxy gains the service headroom that
    /// makes "overload" a spike-induced state rather than the baseline.
    fn default() -> Self {
        OverloadConfig {
            base: ChurnConfig {
                clock: ClockMode::Event,
                net: NetworkModel::default().scaled(1.0 / 16.0),
                ..ChurnConfig::default()
            },
            intensities: vec![4, 8, 16],
            spike_at: 10_000,
            spike_span: 8_000,
            breaker: 3,
            budget: 0.1,
            shed_high: 32,
            shed_low: 8,
            seed: 0x0F1A_5A11,
        }
    }
}

impl OverloadConfig {
    /// Validates ranges.
    pub fn validate(&self) -> Result<(), SimError> {
        self.base.validate()?;
        if self.intensities.is_empty() {
            return Err(SimError::InvalidConfig("intensities must be non-empty".into()));
        }
        for t in &self.intensities {
            if *t < 2 {
                return Err(SimError::InvalidConfig(format!(
                    "spike intensity must be at least 2x, got {t}"
                )));
            }
        }
        if self.spike_span == 0 {
            return Err(SimError::InvalidConfig("spike_span must be positive".into()));
        }
        let spike_end = self.spike_at + u64::from(self.spike_span);
        if spike_end >= self.base.requests as u64 {
            return Err(SimError::InvalidConfig(format!(
                "the spike must end before the trace does (spike ends at {spike_end}, \
                 trace has {} requests) — recovery needs a post-spike tail",
                self.base.requests
            )));
        }
        if self.breaker == 0 && self.budget <= 0.0 && self.shed_high == 0 {
            return Err(SimError::InvalidConfig(
                "defended cells need at least one defense knob (breaker, budget or shed)".into(),
            ));
        }
        if self.budget < 0.0 || self.budget > 1.0 {
            return Err(SimError::InvalidConfig(format!(
                "budget ratio must be in [0, 1], got {}",
                self.budget
            )));
        }
        if self.shed_high > 0 && self.shed_low >= self.shed_high {
            return Err(SimError::InvalidConfig(
                "shed low watermark must sit below the high watermark".into(),
            ));
        }
        Ok(())
    }

    /// The fault plan for one cell. Naive and defended plans share the
    /// identical spike; only the defense knobs differ.
    fn plan_for(&self, times: u16, defended: bool) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.seed = derive(self.seed, "overload-sweep");
        plan.push(self.spike_at, FaultAction::Spike { span: self.spike_span, times });
        if defended {
            plan.breaker = self.breaker;
            plan.budget = self.budget;
            plan.shed_high = self.shed_high;
            plan.shed_low = self.shed_low;
        }
        plan
    }
}

/// What one (intensity, defense) cell measured.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadCell {
    /// Arrival-rate multiplier of the spike.
    pub intensity: u16,
    /// Whether the defense stack was armed.
    pub defended: bool,
    /// Latency-discounted useful service, in percent of all requests
    /// (see the module docs).
    pub goodput_percent: f64,
    /// Mean end-to-end latency in milli-units (queueing included under
    /// the event clock).
    pub avg_latency_milli: u64,
    /// 99th-percentile end-to-end latency in milli-units.
    pub p99_latency_milli: u64,
    /// Requests shed (background work skipped), in percent.
    pub shed_percent: f64,
    /// Requests degraded straight to the origin server, in percent.
    pub degraded_percent: f64,
    /// Sends the tripped circuit breakers failed fast.
    pub breaker_fast_fails: u64,
    /// Retry ladders cut short by an exhausted retry budget.
    pub retry_budget_denials: u64,
    /// Whether shedding was still engaged at the end of the run.
    pub end_shedding: bool,
    /// Whether any post-spike window got back to ≥ 95% of baseline
    /// goodput.
    pub recovered: bool,
    /// Requests from spike end until the first recovered window closed
    /// (censored at the end of the trace when `recovered` is false).
    pub recovery_requests: u64,
}

/// Per-intensity resilience summary: naive vs defended run.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceRow {
    /// The spike intensity both cells ran.
    pub intensity: u16,
    /// Naive goodput, in percent.
    pub naive_goodput_percent: f64,
    /// Defended goodput, in percent.
    pub defended_goodput_percent: f64,
    /// Naive recovery time in requests (censored at the trace end).
    pub naive_recovery_requests: u64,
    /// Defended recovery time in requests.
    pub defended_recovery_requests: u64,
    /// Whether the defended run recovered at all.
    pub defended_recovered: bool,
    /// How much worse the naive run is: the larger of the recovery-time
    /// ratio and the goodput-deficit ratio (both naive ÷ defended,
    /// denominators clamped so the ratio stays finite). The figure gate
    /// wants ≥ 2.
    pub factor: f64,
}

/// Everything an overload sweep measured.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadReport {
    /// Requests per run.
    pub requests: u64,
    /// Overlay size.
    pub cluster: u64,
    /// Clock mode every run used.
    pub clock: ClockMode,
    /// Master seed of the sweep's fault plans.
    pub seed: u64,
    /// Request index where the spike starts.
    pub spike_at: u64,
    /// Spike length in requests.
    pub spike_span: u32,
    /// Defense knobs of the defended cells.
    pub breaker: u32,
    /// Retry-budget ratio of the defended cells.
    pub budget: f64,
    /// Shed high watermark (rounds) of the defended cells.
    pub shed_high: u64,
    /// Shed low watermark (rounds) of the defended cells.
    pub shed_low: u64,
    /// Fault-free baseline goodput, in percent.
    pub baseline_goodput_percent: f64,
    /// Baseline mean latency in milli-units.
    pub baseline_avg_latency_milli: u64,
    /// Baseline p99 latency in milli-units.
    pub baseline_p99_latency_milli: u64,
    /// Two rows per swept intensity: naive first, then defended.
    pub cells: Vec<OverloadCell>,
    /// One row per swept intensity.
    pub resilience: Vec<ResilienceRow>,
}

/// Pooled mean window latency in milli-units (0 when empty).
fn pooled_mean_milli(out: &DriveOutcome) -> f64 {
    let reqs: u64 = out.windows.iter().map(|w| w.requests).sum();
    if reqs == 0 {
        return 0.0;
    }
    let lat: u64 = out.windows.iter().map(|w| w.latency_milli_sum).sum();
    lat as f64 / reqs as f64
}

/// Latency-discounted goodput in percent of `issued` (module docs).
fn goodput_percent(out: &DriveOutcome, issued: u64, base_mean: f64) -> f64 {
    if issued == 0 {
        return 0.0;
    }
    let mut good = 0.0f64;
    for w in &out.windows {
        if w.requests == 0 {
            continue;
        }
        let mean = w.latency_milli_sum as f64 / w.requests as f64;
        let speed = if mean <= base_mean || mean <= 0.0 { 1.0 } else { base_mean / mean };
        good += (w.requests - w.degraded) as f64 * speed;
    }
    good / issued as f64 * 100.0
}

/// First post-spike window back at ≥ 95% of baseline goodput: returns
/// `(recovered, requests from spike end to that window's close)`,
/// censored at the trace end when no window qualifies.
fn recovery(
    out: &DriveOutcome,
    spike_end: u64,
    issued: u64,
    base_mean: f64,
    base_good_frac: f64,
) -> (bool, u64) {
    let win = OVERLOAD_WINDOW as u64;
    let target = 0.95 * base_good_frac;
    for (k, w) in out.windows.iter().enumerate() {
        let start = k as u64 * win;
        if start < spike_end || w.requests == 0 {
            continue;
        }
        let mean = w.latency_milli_sum as f64 / w.requests as f64;
        let speed = if mean <= base_mean || mean <= 0.0 { 1.0 } else { base_mean / mean };
        let good = (w.requests - w.degraded) as f64 * speed / w.requests as f64;
        if good >= target {
            return (true, (start + w.requests).saturating_sub(spike_end));
        }
    }
    (false, issued.saturating_sub(spike_end))
}

/// Runs the sweep: one fault-free baseline, then a naive and a defended
/// drive per intensity, all over the same trace.
pub fn run_overload(cfg: &OverloadConfig) -> Result<OverloadReport, SimError> {
    cfg.validate()?;
    let trace = ProWGen::new(ProWGenConfig {
        requests: cfg.base.requests,
        distinct_objects: cfg.base.distinct_objects,
        num_clients: cfg.base.trace_clients.max(1) as u32,
        seed: cfg.base.trace_seed,
        ..ProWGenConfig::default()
    })
    .generate();

    let issued = cfg.base.requests as u64;
    let spike_end = cfg.spike_at + u64::from(cfg.spike_span);

    let (baseline, _) = drive(
        &ChurnConfig { plan: FaultPlan::none(), ..cfg.base.clone() },
        &trace,
        &FaultPlan::none(),
    )?;
    let base_mean = pooled_mean_milli(&baseline);
    let base_good = goodput_percent(&baseline, issued, base_mean);
    let base_latency = (baseline.metrics.avg_latency() * 1000.0).round() as u64;
    let base_p99 = baseline.measured_milli.snapshot().quantile(0.99);

    let mut intensities = cfg.intensities.clone();
    intensities.sort_unstable();
    intensities.dedup();

    let mut cells = Vec::new();
    let mut resilience = Vec::new();
    for times in &intensities {
        let mut measured: Vec<OverloadCell> = Vec::with_capacity(2);
        for defended in [false, true] {
            let plan = cfg.plan_for(*times, defended);
            let churn = ChurnConfig { plan: plan.clone(), ..cfg.base.clone() };
            let (out, _) = drive(&churn, &trace, &plan)?;
            let (recovered, recovery_requests) =
                recovery(&out, spike_end, issued, base_mean, base_good / 100.0);
            measured.push(OverloadCell {
                intensity: *times,
                defended,
                goodput_percent: goodput_percent(&out, issued, base_mean),
                avg_latency_milli: (out.metrics.avg_latency() * 1000.0).round() as u64,
                p99_latency_milli: out.measured_milli.snapshot().quantile(0.99),
                shed_percent: out.shed_background as f64 / issued as f64 * 100.0,
                degraded_percent: out.degraded as f64 / issued as f64 * 100.0,
                breaker_fast_fails: out.snapshot.breaker_fast_fails,
                retry_budget_denials: out.snapshot.retry_budget_denials,
                end_shedding: out.end_shedding,
                recovered,
                recovery_requests,
            });
        }
        let (naive, defended) = (&measured[0], &measured[1]);
        let recovery_ratio =
            naive.recovery_requests as f64 / (defended.recovery_requests.max(1)) as f64;
        let deficit_ratio = (base_good - naive.goodput_percent).max(0.0)
            / (base_good - defended.goodput_percent).max(0.01);
        resilience.push(ResilienceRow {
            intensity: *times,
            naive_goodput_percent: naive.goodput_percent,
            defended_goodput_percent: defended.goodput_percent,
            naive_recovery_requests: naive.recovery_requests,
            defended_recovery_requests: defended.recovery_requests,
            defended_recovered: defended.recovered,
            factor: recovery_ratio.max(deficit_ratio),
        });
        cells.extend(measured);
    }

    Ok(OverloadReport {
        requests: issued,
        cluster: cfg.base.clients_per_cluster as u64,
        clock: cfg.base.clock,
        seed: cfg.seed,
        spike_at: cfg.spike_at,
        spike_span: cfg.spike_span,
        breaker: cfg.breaker,
        budget: cfg.budget,
        shed_high: cfg.shed_high,
        shed_low: cfg.shed_low,
        baseline_goodput_percent: base_good,
        baseline_avg_latency_milli: base_latency,
        baseline_p99_latency_milli: base_p99,
        cells,
        resilience,
    })
}

impl OverloadReport {
    /// Renders the report as a JSON document with a fixed field order
    /// (hand-rolled: the offline build has no serde_json). Bit-stable
    /// for a fixed config — the overload golden test diffs it.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"requests\": {},", self.requests);
        let _ = writeln!(s, "  \"cluster\": {},", self.cluster);
        let _ = writeln!(s, "  \"clock\": \"{}\",", self.clock.label());
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"spike_at\": {},", self.spike_at);
        let _ = writeln!(s, "  \"spike_span\": {},", self.spike_span);
        let _ = writeln!(s, "  \"breaker\": {},", self.breaker);
        let _ = writeln!(s, "  \"budget\": {:.4},", self.budget);
        let _ = writeln!(s, "  \"shed_high\": {},", self.shed_high);
        let _ = writeln!(s, "  \"shed_low\": {},", self.shed_low);
        let _ =
            writeln!(s, "  \"baseline_goodput_percent\": {:.4},", self.baseline_goodput_percent);
        let _ =
            writeln!(s, "  \"baseline_avg_latency_milli\": {},", self.baseline_avg_latency_milli);
        let _ =
            writeln!(s, "  \"baseline_p99_latency_milli\": {},", self.baseline_p99_latency_milli);
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"intensity\": {}, \"defended\": {}, \"goodput_percent\": {:.4}, \
                 \"avg_latency_milli\": {}, \"p99_latency_milli\": {}, \"shed_percent\": {:.4}, \
                 \"degraded_percent\": {:.4}, \"breaker_fast_fails\": {}, \
                 \"retry_budget_denials\": {}, \"end_shedding\": {}, \"recovered\": {}, \
                 \"recovery_requests\": {}}}",
                c.intensity,
                c.defended,
                c.goodput_percent,
                c.avg_latency_milli,
                c.p99_latency_milli,
                c.shed_percent,
                c.degraded_percent,
                c.breaker_fast_fails,
                c.retry_budget_denials,
                c.end_shedding,
                c.recovered,
                c.recovery_requests,
            );
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"resilience\": [\n");
        for (i, r) in self.resilience.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"intensity\": {}, \"naive_goodput_percent\": {:.4}, \
                 \"defended_goodput_percent\": {:.4}, \"naive_recovery_requests\": {}, \
                 \"defended_recovery_requests\": {}, \"defended_recovered\": {}, \
                 \"factor\": {:.4}}}",
                r.intensity,
                r.naive_goodput_percent,
                r.defended_goodput_percent,
                r.naive_recovery_requests,
                r.defended_recovery_requests,
                r.defended_recovered,
                r.factor,
            );
            s.push_str(if i + 1 < self.resilience.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the per-cell rows as CSV (the committed figure format).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "intensity,defended,goodput_percent,avg_latency_milli,p99_latency_milli,\
             shed_percent,degraded_percent,breaker_fast_fails,retry_budget_denials,\
             recovered,recovery_requests\n",
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{},{},{:.4},{},{},{:.4},{:.4},{},{},{},{}",
                c.intensity,
                c.defended,
                c.goodput_percent,
                c.avg_latency_milli,
                c.p99_latency_milli,
                c.shed_percent,
                c.degraded_percent,
                c.breaker_fast_fails,
                c.retry_budget_denials,
                c.recovered,
                c.recovery_requests,
            );
        }
        s
    }

    /// Renders an aligned text summary for terminals.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "baseline: goodput {:.2}%, avg latency {:.3}, p99 {:.3}",
            self.baseline_goodput_percent,
            self.baseline_avg_latency_milli as f64 / 1000.0,
            self.baseline_p99_latency_milli as f64 / 1000.0
        );
        let _ = writeln!(
            s,
            "{:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9}",
            "spike", "defense", "goodput%", "latency", "p99", "shed%", "orig%", "recovery"
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:>8}x {:>9} {:>9.2} {:>9.3} {:>9.3} {:>7.2} {:>7.2} {:>9}",
                c.intensity,
                if c.defended { "on" } else { "off" },
                c.goodput_percent,
                c.avg_latency_milli as f64 / 1000.0,
                c.p99_latency_milli as f64 / 1000.0,
                c.shed_percent,
                c.degraded_percent,
                if c.recovered {
                    format!("{}", c.recovery_requests)
                } else {
                    format!(">{}", c.recovery_requests)
                },
            );
        }
        for r in &self.resilience {
            let _ = writeln!(
                s,
                "resilience at {:>2}x: naive {:.2}% vs defended {:.2}% goodput, \
                 recovery {} vs {} requests ({:.1}x)",
                r.intensity,
                r.naive_goodput_percent,
                r.defended_goodput_percent,
                r.naive_recovery_requests,
                r.defended_recovery_requests,
                r.factor,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> OverloadConfig {
        OverloadConfig {
            base: ChurnConfig {
                requests: 8_000,
                distinct_objects: 400,
                trace_clients: 20,
                clients_per_cluster: 20,
                client_cache_capacity: 2,
                clock: ClockMode::Event,
                net: NetworkModel::default().scaled(1.0 / 16.0),
                ..ChurnConfig::default()
            },
            intensities: vec![8],
            spike_at: 1_000,
            spike_span: 3_000,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn sweep_is_deterministic_and_shaped() {
        let cfg = quick_cfg();
        let a = run_overload(&cfg).expect("sweep runs");
        let b = run_overload(&cfg).expect("sweep runs");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.cells.len(), 2, "one intensity, naive + defended");
        assert_eq!(a.resilience.len(), 1);
        assert!(!a.cells[0].defended && a.cells[1].defended, "naive row first");
    }

    #[test]
    fn defense_bounds_the_flash_crowd() {
        let report = run_overload(&quick_cfg()).expect("sweep runs");
        let naive = &report.cells[0];
        let defended = &report.cells[1];
        // Nothing sheds or degrades with the defenses off.
        assert_eq!(naive.shed_percent, 0.0);
        assert_eq!(naive.degraded_percent, 0.0);
        assert_eq!(naive.breaker_fast_fails + naive.retry_budget_denials, 0);
        // The armed defense sheds under the spike and buys back goodput
        // and tail latency.
        assert!(defended.shed_percent > 0.0, "the spike must engage shedding");
        assert!(
            defended.goodput_percent > naive.goodput_percent,
            "defended goodput {:.2}% must beat naive {:.2}%",
            defended.goodput_percent,
            naive.goodput_percent
        );
        assert!(
            defended.avg_latency_milli < naive.avg_latency_milli,
            "defended latency {} must undercut naive {}",
            defended.avg_latency_milli,
            naive.avg_latency_milli
        );
        assert!(defended.recovered, "the defended run must return to baseline goodput");
        assert!(
            report.resilience[0].factor >= 2.0,
            "naive must be >= 2x worse, got {:.2}",
            report.resilience[0].factor
        );
    }

    #[test]
    fn compat_clock_has_no_queue_to_overload() {
        let mut cfg = quick_cfg();
        cfg.base.clock = ClockMode::Compat;
        let report = run_overload(&cfg).expect("sweep runs");
        for c in &report.cells {
            assert_eq!(c.shed_percent, 0.0, "no backlog, no shedding");
            assert!(c.recovered, "analytic latencies never leave baseline");
        }
    }

    #[test]
    fn renders_json_csv_and_table() {
        let report = run_overload(&quick_cfg()).expect("sweep runs");
        let json = report.to_json();
        assert!(json.contains("\"cells\": ["));
        assert!(json.contains("\"resilience\": ["));
        assert!(json.contains("\"baseline_goodput_percent\""));
        let csv = report.to_csv();
        assert!(csv.starts_with("intensity,defended,"));
        assert_eq!(csv.lines().count(), 1 + report.cells.len());
        assert!(report.to_table().contains("resilience at"));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = quick_cfg();
        cfg.intensities = vec![];
        assert!(run_overload(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.intensities = vec![1];
        assert!(run_overload(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.spike_span = 0;
        assert!(run_overload(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.spike_at = 7_999;
        assert!(run_overload(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.breaker = 0;
        cfg.budget = 0.0;
        cfg.shed_high = 0;
        assert!(run_overload(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.shed_low = cfg.shed_high;
        assert!(run_overload(&cfg).is_err());
    }
}
