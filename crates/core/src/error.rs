//! Typed errors for the simulator's fallible APIs.
//!
//! Configuration validation, experiment construction, and the CLI all used
//! to speak `Result<_, String>`; [`SimError`] replaces that with a typed
//! enum so callers can branch on the failure kind (the CLI maps variants
//! to distinct exit codes) and `?` composes with `std::io` errors.

use std::fmt;

/// Why a simulation API call failed.
#[derive(Debug)]
pub enum SimError {
    /// A configuration field is out of its documented range.
    InvalidConfig(String),
    /// A scheme name did not parse (see `SchemeKind::from_str`).
    UnknownScheme(String),
    /// `run_experiment` was handed a trace count that does not match the
    /// configured proxy count.
    TraceCountMismatch {
        /// Traces supplied.
        traces: usize,
        /// Proxies configured.
        proxies: usize,
    },
    /// An underlying I/O operation failed (stats export, trace loading).
    Io(std::io::Error),
    /// A fault-injection operation failed at the P2P layer (unknown node,
    /// double crash).
    Fault(webcache_p2p::P2pError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnknownScheme(name) => write!(
                f,
                "unknown scheme '{name}' (expected one of: nc, nc-ec, sc, sc-ec, fc, fc-ec, \
                 hier-gd)"
            ),
            SimError::TraceCountMismatch { traces, proxies } => {
                write!(f, "need one trace per proxy ({traces} traces, {proxies} proxies)")
            }
            SimError::Io(e) => write!(f, "i/o error: {e}"),
            SimError::Fault(e) => write!(f, "fault injection failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io(e) => Some(e),
            SimError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e)
    }
}

impl From<webcache_p2p::P2pError> for SimError {
    fn from(e: webcache_p2p::P2pError) -> Self {
        SimError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        assert!(SimError::InvalidConfig("x".into()).to_string().contains("invalid"));
        let u = SimError::UnknownScheme("zzz".into()).to_string();
        assert!(u.contains("zzz") && u.contains("hier-gd"));
        let m = SimError::TraceCountMismatch { traces: 1, proxies: 2 }.to_string();
        assert!(m.contains("1 traces") && m.contains("2 proxies"));
        let io: SimError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        let fault: SimError =
            webcache_p2p::P2pError::UnknownNode(webcache_pastry::NodeId(7)).into();
        assert!(fault.to_string().contains("fault injection"));
    }

    #[test]
    fn error_trait_source() {
        use std::error::Error as _;
        assert!(SimError::InvalidConfig("x".into()).source().is_none());
        let io: SimError = std::io::Error::other("boom").into();
        assert!(io.source().is_some());
    }
}
