//! Parallel (scheme × cache-size) sweeps — the shape of every figure.
//!
//! Each figure in the paper plots latency gain against proxy cache size
//! (10%–100% of the infinite cache size) for a set of schemes. A sweep
//! runs every (scheme, size) point plus the NC baseline per size, in
//! parallel with Rayon (points are independent simulations), and reports
//! gains.

use crate::config::{run_experiment, ExperimentConfig, SchemeKind};
use crate::metrics::{latency_gain_percent, RunMetrics};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use webcache_workload::Trace;

/// The paper's x-axis: 10%..=100% in steps of 10%.
pub const PAPER_CACHE_FRACS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// One sweep point's result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepResult {
    /// Scheme simulated.
    pub scheme: SchemeKind,
    /// Proxy cache size as a fraction of `U`.
    pub cache_frac: f64,
    /// Raw metrics.
    pub metrics: RunMetrics,
    /// Latency gain vs the NC baseline at the same size, percent.
    pub gain_percent: f64,
}

/// Runs `schemes` at every size in `fracs` over `traces`, computing gains
/// against an NC baseline at the same size. `base` supplies everything but
/// the scheme and size.
pub fn sweep(
    schemes: &[SchemeKind],
    fracs: &[f64],
    traces: &[Trace],
    base: &ExperimentConfig,
) -> Vec<SweepResult> {
    // NC baselines, one per size (shared by every scheme at that size).
    let baselines: Vec<RunMetrics> = fracs
        .par_iter()
        .map(|&f| {
            let cfg = ExperimentConfig { scheme: SchemeKind::Nc, cache_frac: f, ..*base };
            run_experiment(&cfg, traces)
        })
        .collect();

    let points: Vec<(SchemeKind, usize)> =
        schemes.iter().flat_map(|&s| (0..fracs.len()).map(move |i| (s, i))).collect();

    points
        .into_par_iter()
        .map(|(scheme, i)| {
            let cache_frac = fracs[i];
            let metrics = if scheme == SchemeKind::Nc {
                baselines[i].clone()
            } else {
                let cfg = ExperimentConfig { scheme, cache_frac, ..*base };
                run_experiment(&cfg, traces)
            };
            let gain_percent = latency_gain_percent(&baselines[i], &metrics);
            SweepResult { scheme, cache_frac, metrics, gain_percent }
        })
        .collect()
}

/// Extracts one scheme's gain curve (ordered by cache size) from sweep
/// results.
pub fn gain_curve(results: &[SweepResult], scheme: SchemeKind) -> Vec<(f64, f64)> {
    let mut curve: Vec<(f64, f64)> = results
        .iter()
        .filter(|r| r.scheme == scheme)
        .map(|r| (r.cache_frac, r.gain_percent))
        .collect();
    curve.sort_by(|a, b| a.0.total_cmp(&b.0));
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_workload::{ProWGen, ProWGenConfig};

    fn traces() -> Vec<Trace> {
        (0..2)
            .map(|p| {
                ProWGen::new(ProWGenConfig {
                    requests: 8_000,
                    distinct_objects: 600,
                    num_clients: 8,
                    seed: 55 + p,
                    ..ProWGenConfig::default()
                })
                .generate()
            })
            .collect()
    }

    #[test]
    fn sweep_covers_grid_and_nc_gain_is_zero() {
        let ts = traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 8;
        let results = sweep(&[SchemeKind::Nc, SchemeKind::Sc], &[0.1, 0.5], &ts, &base);
        assert_eq!(results.len(), 4);
        for r in &results {
            if r.scheme == SchemeKind::Nc {
                assert!(r.gain_percent.abs() < 1e-9, "NC vs itself must be 0");
            }
            assert_eq!(r.metrics.requests, 16_000);
        }
    }

    #[test]
    fn gain_curve_sorted() {
        let ts = traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 8;
        let results = sweep(&[SchemeKind::Sc], &[0.5, 0.1, 0.3], &ts, &base);
        let curve = gain_curve(&results, SchemeKind::Sc);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn paper_fracs_are_the_figure_axis() {
        assert_eq!(PAPER_CACHE_FRACS.len(), 10);
        assert!((PAPER_CACHE_FRACS[0] - 0.1).abs() < 1e-12);
        assert!((PAPER_CACHE_FRACS[9] - 1.0).abs() < 1e-12);
    }
}
