//! Parallel (scheme × cache-size) sweeps — the shape of every figure.
//!
//! Each figure in the paper plots latency gain against proxy cache size
//! (10%–100% of the infinite cache size) for a set of schemes. A sweep
//! runs every (scheme, size) point plus the NC baseline per size, in
//! parallel with Rayon (points are independent simulations), and reports
//! gains.

use crate::config::{run_experiment_recorded, ExperimentConfig, SchemeKind};
use crate::error::SimError;
use crate::metrics::{latency_gain_percent, RunMetrics};
use crate::recorder::{NoopRecorder, Recorder};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use webcache_workload::Trace;

/// The paper's x-axis: 10%..=100% in steps of 10%.
pub const PAPER_CACHE_FRACS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// One sweep point's result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepResult {
    /// Scheme simulated.
    pub scheme: SchemeKind,
    /// Proxy cache size as a fraction of `U`.
    pub cache_frac: f64,
    /// Raw metrics.
    pub metrics: RunMetrics,
    /// Latency gain vs the NC baseline at the same size, percent.
    pub gain_percent: f64,
    /// Wall-clock seconds this point's simulation took (NC points report
    /// their shared baseline run's time). Diagnostic only — noisy across
    /// machines and thread counts, never part of golden comparisons.
    pub wall_secs: f64,
}

/// Runs `schemes` at every size in `fracs` over `traces`, computing gains
/// against an NC baseline at the same size. `base` supplies everything but
/// the scheme and size.
pub fn sweep(
    schemes: &[SchemeKind],
    fracs: &[f64],
    traces: &[Trace],
    base: &ExperimentConfig,
) -> Result<Vec<SweepResult>, SimError> {
    sweep_recorded(schemes, fracs, traces, base, NoopRecorder)
}

/// [`sweep`] with a shared [`Recorder`] observing every grid point.
///
/// The recorder handle is cloned per simulation (pass e.g.
/// `Arc<StatsRecorder>`), so its shards aggregate across all points —
/// per-point attribution needs one sweep call per point.
///
/// Every grid config is validated *before* the parallel region, so the
/// Rayon closures below are infallible.
pub fn sweep_recorded<R: Recorder + Clone + Send + 'static>(
    schemes: &[SchemeKind],
    fracs: &[f64],
    traces: &[Trace],
    base: &ExperimentConfig,
    recorder: R,
) -> Result<Vec<SweepResult>, SimError> {
    for &f in fracs {
        base.at(SchemeKind::Nc, f).validate()?;
        for &s in schemes {
            let cfg = base.at(s, f);
            cfg.validate()?;
            if traces.len() != cfg.num_proxies {
                return Err(SimError::TraceCountMismatch {
                    traces: traces.len(),
                    proxies: cfg.num_proxies,
                });
            }
        }
    }

    // NC baselines, one per size (shared by every scheme at that size).
    let baselines: Vec<(RunMetrics, f64)> = fracs
        .par_iter()
        .map(|&f| {
            let start = std::time::Instant::now();
            let m = run_experiment_recorded(&base.at(SchemeKind::Nc, f), traces, recorder.clone())
                .expect("validated above");
            (m, start.elapsed().as_secs_f64())
        })
        .collect();

    let points: Vec<(SchemeKind, usize)> =
        schemes.iter().flat_map(|&s| (0..fracs.len()).map(move |i| (s, i))).collect();

    Ok(points
        .into_par_iter()
        .map(|(scheme, i)| {
            let cache_frac = fracs[i];
            let (metrics, wall_secs) = if scheme == SchemeKind::Nc {
                baselines[i].clone()
            } else {
                let start = std::time::Instant::now();
                let m =
                    run_experiment_recorded(&base.at(scheme, cache_frac), traces, recorder.clone())
                        .expect("validated above");
                (m, start.elapsed().as_secs_f64())
            };
            let gain_percent = latency_gain_percent(&baselines[i].0, &metrics);
            SweepResult { scheme, cache_frac, metrics, gain_percent, wall_secs }
        })
        .collect())
}

/// Extracts one scheme's gain curve (ordered by cache size) from sweep
/// results.
pub fn gain_curve(results: &[SweepResult], scheme: SchemeKind) -> Vec<(f64, f64)> {
    let mut curve: Vec<(f64, f64)> = results
        .iter()
        .filter(|r| r.scheme == scheme)
        .map(|r| (r.cache_frac, r.gain_percent))
        .collect();
    curve.sort_by(|a, b| a.0.total_cmp(&b.0));
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_workload::{ProWGen, ProWGenConfig};

    fn traces() -> Vec<Trace> {
        (0..2)
            .map(|p| {
                ProWGen::new(ProWGenConfig {
                    requests: 8_000,
                    distinct_objects: 600,
                    num_clients: 8,
                    seed: 55 + p,
                    ..ProWGenConfig::default()
                })
                .generate()
            })
            .collect()
    }

    #[test]
    fn sweep_covers_grid_and_nc_gain_is_zero() {
        let ts = traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 8;
        let results = sweep(&[SchemeKind::Nc, SchemeKind::Sc], &[0.1, 0.5], &ts, &base).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            if r.scheme == SchemeKind::Nc {
                assert!(r.gain_percent.abs() < 1e-9, "NC vs itself must be 0");
            }
            assert_eq!(r.metrics.requests, 16_000);
        }
    }

    #[test]
    fn gain_curve_sorted() {
        let ts = traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 8;
        let results = sweep(&[SchemeKind::Sc], &[0.5, 0.1, 0.3], &ts, &base).unwrap();
        let curve = gain_curve(&results, SchemeKind::Sc);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn recorded_sweep_aggregates_every_point() {
        use crate::recorder::StatsRecorder;
        use std::sync::Arc;
        let ts = traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 8;
        let rec = Arc::new(StatsRecorder::new());
        let results =
            sweep_recorded(&[SchemeKind::Nc, SchemeKind::Sc], &[0.1, 0.5], &ts, &base, rec.clone())
                .unwrap();
        let simulated: u64 = results.iter().map(|r| r.metrics.requests).sum();
        // The shared recorder saw the two NC baselines plus the non-NC
        // points (NC points reuse the baseline metrics, not a re-run).
        let expected = simulated; // 2 baselines + 2 SC runs = 4 × 16k; NC points reuse.
        assert_eq!(rec.snapshot().total_requests(), expected);
    }

    #[test]
    fn sweep_rejects_bad_grid_upfront() {
        let ts = traces();
        let mut base = ExperimentConfig::new(SchemeKind::Nc, 0.1);
        base.clients_per_cluster = 0; // invalid for client-cache schemes
        assert!(sweep(&[SchemeKind::ScEc], &[0.1], &ts, &base).is_err());
    }

    #[test]
    fn paper_fracs_are_the_figure_axis() {
        assert_eq!(PAPER_CACHE_FRACS.len(), 10);
        assert!((PAPER_CACHE_FRACS[0] - 0.1).abs() < 1e-12);
        assert!((PAPER_CACHE_FRACS[9] - 1.0).abs() < 1e-12);
    }
}
