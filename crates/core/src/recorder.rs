//! The observability layer: pluggable recorders for the request path.
//!
//! Every diagnostic the paper's §5.2 claims rest on — hit classes, Pastry
//! hop counts (claim 11), piggyback destage connections (claim 12),
//! directory stale lookups (claim 13) — flows through the [`Recorder`]
//! trait. The simulation loop reports one [`Recorder::request`] per served
//! request; the Hier-GD engine forwards the P2P layer's structured
//! [`P2pEvent`]s through [`Recorder::p2p_event`].
//!
//! Recorders are **statically monomorphized**: engines are generic over
//! `R: Recorder`, every emission site is guarded by the associated
//! constant `R::ENABLED`, and the default [`NoopRecorder`] sets it to
//! `false`, so the disabled path compiles to exactly the un-instrumented
//! code — the hot loop pays nothing (golden metrics stay bit-for-bit
//! identical, throughput stays within noise of the PR 1 baseline).
//!
//! Two concrete recorders ship:
//!
//! * [`StatsRecorder`] — lock-free aggregate counters and log₂-bucketed
//!   histograms, built on [`ShardedCounter`]/[`Log2Histogram`] so one
//!   instance can be shared across the rayon-parallel `sweep()` workers;
//! * [`EventLogRecorder`] — a bounded ring buffer of structured events
//!   with CSV/JSON export for offline analysis (`target/figures/`).

use crate::error::SimError;
use crate::net::HitClass;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};
use webcache_p2p::P2pEvent;
use webcache_primitives::{Log2Histogram, Log2Snapshot, ShardedCounter};

/// Scale factor between model latency units and the integer "milli-units"
/// recorded into the latency histogram (`Tl = 1.0` → 1000).
pub const LATENCY_MILLI_SCALE: f64 = 1000.0;

/// Observer of the simulation's request path.
///
/// Methods take `&self` (recorders use interior mutability / atomics) so
/// a single recorder can be shared by the parallel sweep workers; `Sync`
/// is part of the contract for the same reason.
pub trait Recorder: Sync {
    /// Whether this recorder observes anything. Emission sites are guarded
    /// by this constant, so `false` deletes them during monomorphization.
    const ENABLED: bool = true;

    /// One request served at `proxy` from `class` with end-to-end model
    /// `latency`.
    fn request(&self, proxy: usize, class: HitClass, latency: f64);

    /// One structured P2P-layer event at `proxy`'s cluster.
    fn p2p_event(&self, proxy: usize, event: P2pEvent);
}

/// The default recorder: statically disabled, zero cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn request(&self, _proxy: usize, _class: HitClass, _latency: f64) {}

    #[inline(always)]
    fn p2p_event(&self, _proxy: usize, _event: P2pEvent) {}
}

impl<R: Recorder + ?Sized> Recorder for &R {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn request(&self, proxy: usize, class: HitClass, latency: f64) {
        (**self).request(proxy, class, latency);
    }

    #[inline]
    fn p2p_event(&self, proxy: usize, event: P2pEvent) {
        (**self).p2p_event(proxy, event);
    }
}

impl<R: Recorder + ?Sized + Send> Recorder for Arc<R> {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn request(&self, proxy: usize, class: HitClass, latency: f64) {
        (**self).request(proxy, class, latency);
    }

    #[inline]
    fn p2p_event(&self, proxy: usize, event: P2pEvent) {
        (**self).p2p_event(proxy, event);
    }
}

/// Fan-out to two recorders (e.g. stats + event log in one run).
impl<A: Recorder, B: Recorder> Recorder for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn request(&self, proxy: usize, class: HitClass, latency: f64) {
        if A::ENABLED {
            self.0.request(proxy, class, latency);
        }
        if B::ENABLED {
            self.1.request(proxy, class, latency);
        }
    }

    #[inline]
    fn p2p_event(&self, proxy: usize, event: P2pEvent) {
        if A::ENABLED {
            self.0.p2p_event(proxy, event);
        }
        if B::ENABLED {
            self.1.p2p_event(proxy, event);
        }
    }
}

/// Lock-free aggregate statistics: per-class request counters, a latency
/// histogram, hop distributions, and every P2P message class the paper's
/// claims 11–13 reference.
///
/// All cells are sharded counters or atomic histograms, so a single
/// `Arc<StatsRecorder>` can be shared across the rayon-parallel `sweep()`
/// without locks. Not `Clone` — share via `Arc` (or borrow).
#[derive(Debug, Default)]
pub struct StatsRecorder {
    /// Requests per [`HitClass`] (indexed by [`HitClass::index`]).
    requests: [ShardedCounter; HitClass::ALL.len()],
    /// End-to-end latency in milli-units (`latency × 1000`, log₂ buckets).
    latency_milli: Log2Histogram,
    /// Overlay hops per routed lookup (claim 11's hop distribution).
    lookup_hops: Log2Histogram,
    /// Overlay hops per destage message.
    destage_hops: Log2Histogram,
    destages: ShardedCounter,
    piggybacked_destages: ShardedCounter,
    direct_destage_connections: ShardedCounter,
    diverted_destages: ShardedCounter,
    refreshed_destages: ShardedCounter,
    lookups: ShardedCounter,
    stale_lookups: ShardedCounter,
    pushes: ShardedCounter,
    directory_probes: ShardedCounter,
    directory_probe_hits: ShardedCounter,
    evictions: ShardedCounter,
    pointer_invalidations: ShardedCounter,
    node_failures: ShardedCounter,
    objects_lost: ShardedCounter,
    node_joins: ShardedCounter,
    objects_migrated: ShardedCounter,
    node_crashes: ShardedCounter,
    objects_at_risk: ShardedCounter,
    node_departures: ShardedCounter,
    objects_handed_off: ShardedCounter,
    timeouts: ShardedCounter,
    dead_node_timeouts: ShardedCounter,
    stale_directory_hits: ShardedCounter,
    stale_hits_replica_served: ShardedCounter,
    rereplications: ShardedCounter,
    replica_copies: ShardedCounter,
    message_retries: ShardedCounter,
    message_dedups: ShardedCounter,
    checksum_failures: ShardedCounter,
    partitions_started: ShardedCounter,
    partitions_healed: ShardedCounter,
    entries_reconciled: ShardedCounter,
    primaries_demoted: ShardedCounter,
    audits_challenged: ShardedCounter,
    audits_failed: ShardedCounter,
    forged_receipts: ShardedCounter,
    quarantines: ShardedCounter,
    breaker_fast_fails: ShardedCounter,
    retry_budget_denials: ShardedCounter,
    objects_lost_permanent: ShardedCounter,
    proactive_repairs: ShardedCounter,
    proactive_repair_copies: ShardedCounter,
}

impl StatsRecorder {
    /// Creates a zeroed recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A plain-data copy of the current counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests_by_class: std::array::from_fn(|i| self.requests[i].get()),
            latency_milli: self.latency_milli.snapshot(),
            lookup_hops: self.lookup_hops.snapshot(),
            destage_hops: self.destage_hops.snapshot(),
            destages: self.destages.get(),
            piggybacked_destages: self.piggybacked_destages.get(),
            direct_destage_connections: self.direct_destage_connections.get(),
            diverted_destages: self.diverted_destages.get(),
            refreshed_destages: self.refreshed_destages.get(),
            lookups: self.lookups.get(),
            stale_lookups: self.stale_lookups.get(),
            pushes: self.pushes.get(),
            directory_probes: self.directory_probes.get(),
            directory_probe_hits: self.directory_probe_hits.get(),
            evictions: self.evictions.get(),
            pointer_invalidations: self.pointer_invalidations.get(),
            node_failures: self.node_failures.get(),
            objects_lost: self.objects_lost.get(),
            node_joins: self.node_joins.get(),
            objects_migrated: self.objects_migrated.get(),
            node_crashes: self.node_crashes.get(),
            objects_at_risk: self.objects_at_risk.get(),
            node_departures: self.node_departures.get(),
            objects_handed_off: self.objects_handed_off.get(),
            timeouts: self.timeouts.get(),
            dead_node_timeouts: self.dead_node_timeouts.get(),
            stale_directory_hits: self.stale_directory_hits.get(),
            stale_hits_replica_served: self.stale_hits_replica_served.get(),
            rereplications: self.rereplications.get(),
            replica_copies: self.replica_copies.get(),
            message_retries: self.message_retries.get(),
            message_dedups: self.message_dedups.get(),
            checksum_failures: self.checksum_failures.get(),
            partitions_started: self.partitions_started.get(),
            partitions_healed: self.partitions_healed.get(),
            entries_reconciled: self.entries_reconciled.get(),
            primaries_demoted: self.primaries_demoted.get(),
            audits_challenged: self.audits_challenged.get(),
            audits_failed: self.audits_failed.get(),
            forged_receipts: self.forged_receipts.get(),
            quarantines: self.quarantines.get(),
            breaker_fast_fails: self.breaker_fast_fails.get(),
            retry_budget_denials: self.retry_budget_denials.get(),
            objects_lost_permanent: self.objects_lost_permanent.get(),
            proactive_repairs: self.proactive_repairs.get(),
            proactive_repair_copies: self.proactive_repair_copies.get(),
        }
    }
}

impl Recorder for StatsRecorder {
    fn request(&self, _proxy: usize, class: HitClass, latency: f64) {
        self.requests[class.index()].incr();
        self.latency_milli.record((latency * LATENCY_MILLI_SCALE).round().max(0.0) as u64);
    }

    fn p2p_event(&self, _proxy: usize, event: P2pEvent) {
        match event {
            P2pEvent::Destage { hops, piggybacked, diverted, refreshed, evicted } => {
                self.destages.incr();
                self.destage_hops.record(u64::from(hops));
                if piggybacked {
                    self.piggybacked_destages.incr();
                } else {
                    self.direct_destage_connections.incr();
                }
                if diverted {
                    self.diverted_destages.incr();
                }
                if refreshed {
                    self.refreshed_destages.incr();
                }
                // The eviction itself arrives as a separate
                // `P2pEvent::Eviction`; `evicted` is only a flag here.
                let _ = evicted;
            }
            P2pEvent::Lookup { hops, stale } => {
                self.lookups.incr();
                self.lookup_hops.record(u64::from(hops));
                if stale {
                    self.stale_lookups.incr();
                }
            }
            P2pEvent::Push { .. } => self.pushes.incr(),
            P2pEvent::DirectoryProbe { hit } => {
                self.directory_probes.incr();
                if hit {
                    self.directory_probe_hits.incr();
                }
            }
            P2pEvent::Eviction { pointer_invalidated } => {
                self.evictions.incr();
                if pointer_invalidated {
                    self.pointer_invalidations.incr();
                }
            }
            P2pEvent::NodeFailed { objects_lost } => {
                self.node_failures.incr();
                self.objects_lost.add(u64::from(objects_lost));
            }
            P2pEvent::NodeJoined { objects_migrated } => {
                self.node_joins.incr();
                self.objects_migrated.add(u64::from(objects_migrated));
            }
            P2pEvent::NodeCrashed { objects_at_risk } => {
                self.node_crashes.incr();
                self.objects_at_risk.add(u64::from(objects_at_risk));
            }
            P2pEvent::NodeDeparted { objects_handed_off } => {
                self.node_departures.incr();
                self.objects_handed_off.add(u64::from(objects_handed_off));
            }
            P2pEvent::TimeoutDetected { dead_node } => {
                self.timeouts.incr();
                if dead_node {
                    self.dead_node_timeouts.incr();
                }
            }
            P2pEvent::StaleDirectoryHit { replica_served } => {
                self.stale_directory_hits.incr();
                if replica_served {
                    self.stale_hits_replica_served.incr();
                }
            }
            P2pEvent::Rereplicated { copies } => {
                self.rereplications.incr();
                self.replica_copies.add(u64::from(copies));
            }
            P2pEvent::MessageRetried { .. } => self.message_retries.incr(),
            P2pEvent::MessageDeduped { .. } => self.message_dedups.incr(),
            P2pEvent::ChecksumFailed { .. } => self.checksum_failures.incr(),
            P2pEvent::PartitionStarted { .. } => self.partitions_started.incr(),
            // `PartitionHealed` carries sweep totals, but each merged entry
            // and demoted primary also arrives as its own event — count
            // those individually to avoid double-counting.
            P2pEvent::PartitionHealed { .. } => self.partitions_healed.incr(),
            P2pEvent::EntryReconciled { .. } => self.entries_reconciled.incr(),
            P2pEvent::PrimaryDemoted { .. } => self.primaries_demoted.incr(),
            P2pEvent::AuditChallenged { .. } => self.audits_challenged.incr(),
            P2pEvent::AuditFailed { .. } => self.audits_failed.incr(),
            P2pEvent::ForgedReceiptDetected { .. } => self.forged_receipts.incr(),
            P2pEvent::NodeQuarantined { .. } => self.quarantines.incr(),
            P2pEvent::BreakerFastFailed { .. } => self.breaker_fast_fails.incr(),
            P2pEvent::RetryBudgetExhausted { .. } => self.retry_budget_denials.incr(),
            P2pEvent::ObjectLost { .. } => self.objects_lost_permanent.incr(),
            P2pEvent::ProactiveRepair { copies } => {
                self.proactive_repairs.incr();
                self.proactive_repair_copies.add(u64::from(copies));
            }
        }
    }
}

/// Plain-data snapshot of a [`StatsRecorder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests per class, indexed by [`HitClass::index`].
    pub requests_by_class: [u64; HitClass::ALL.len()],
    /// End-to-end latency histogram in milli-units (latency × 1000).
    pub latency_milli: Log2Snapshot,
    /// Hop distribution of routed lookups (claim 11).
    pub lookup_hops: Log2Snapshot,
    /// Hop distribution of destage messages.
    pub destage_hops: Log2Snapshot,
    /// Total destages (proxy evictions passed down, Fig. 1).
    pub destages: u64,
    /// Destages that rode HTTP responses (§4.4).
    pub piggybacked_destages: u64,
    /// Dedicated connections opened for destaging (claim 12: zero when
    /// piggybacking is on).
    pub direct_destage_connections: u64,
    /// Destages diverted to a leaf-set neighbor (§4.3).
    pub diverted_destages: u64,
    /// Destages refreshing an already-resident object.
    pub refreshed_destages: u64,
    /// Routed lookups into a client cluster.
    pub lookups: u64,
    /// Lookups whose object was gone (claim 13: Bloom false positives /
    /// churn staleness).
    pub stale_lookups: u64,
    /// Successful push-protocol fetches (§4.5).
    pub pushes: u64,
    /// Serve-path consultations of the own-cluster lookup directory.
    pub directory_probes: u64,
    /// Probes that answered "present".
    pub directory_probe_hits: u64,
    /// Client-cache evictions (destage replacement + join migration).
    pub evictions: u64,
    /// Evictions that invalidated a diversion pointer.
    pub pointer_invalidations: u64,
    /// Client machines failed.
    pub node_failures: u64,
    /// Objects lost to failures.
    pub objects_lost: u64,
    /// Client machines joined mid-run.
    pub node_joins: u64,
    /// Objects migrated to newcomers.
    pub objects_migrated: u64,
    /// Client machines crashed silently (unannounced, lazily detected).
    pub node_crashes: u64,
    /// Primary copies at risk at crash time (before replica rescue).
    pub objects_at_risk: u64,
    /// Client machines departed gracefully.
    pub node_departures: u64,
    /// Objects handed off to new roots by graceful departures.
    pub objects_handed_off: u64,
    /// Timeout-equivalent stalls (dead-node detection, message loss,
    /// slow nodes).
    pub timeouts: u64,
    /// Timeouts that exposed a crashed node (lazy failure detection).
    pub dead_node_timeouts: u64,
    /// Directory-approved lookups whose primary died with a crash.
    pub stale_directory_hits: u64,
    /// Stale directory hits rescued by a leaf-set replica.
    pub stale_hits_replica_served: u64,
    /// Replica promotions that restored the replication factor.
    pub rereplications: u64,
    /// Fresh replica copies created by re-replications.
    pub replica_copies: u64,
    /// Protocol messages that needed at least one retransmission through
    /// the unreliable transport.
    pub message_retries: u64,
    /// Duplicate deliveries discarded by a receiver's dedup window.
    pub message_dedups: u64,
    /// Delivery attempts rejected by the XXH64 payload checksum.
    pub checksum_failures: u64,
    /// Network partitions that split the overlay into islands.
    pub partitions_started: u64,
    /// Partitions healed by the anti-entropy reconciliation sweep.
    pub partitions_healed: u64,
    /// Directory entries merged during reconciliation (epoch winners).
    pub entries_reconciled: u64,
    /// Split-brain primaries demoted to replicas or collected on heal.
    pub primaries_demoted: u64,
    /// Possession challenges issued against store-receipt senders.
    pub audits_challenged: u64,
    /// Audit strikes recorded: possession challenges the audited node
    /// could not answer, plus garbled fetch payloads caught by checksum
    /// while the defense is armed.
    pub audits_failed: u64,
    /// Store receipts exposed as forged by a failed audit.
    pub forged_receipts: u64,
    /// Nodes quarantined after exhausting their audit strikes.
    pub quarantines: u64,
    /// Sends that fail-fasted on an open circuit breaker (overload
    /// defense): one detection timeout instead of a full backoff ladder.
    pub breaker_fast_fails: u64,
    /// Retry ladders abandoned because the per-node retry budget ran dry
    /// (overload defense): the work degraded to the origin server.
    pub retry_budget_denials: u64,
    /// Objects permanently lost with no surviving copy — the
    /// no-silent-loss guarantee ledgers each exactly once
    /// ([`P2pEvent::ObjectLost`]). Distinct from `objects_lost`, which
    /// aggregates the per-failure loss counts announced at crash time.
    pub objects_lost_permanent: u64,
    /// Entries the background repair scheduler restored to the replica
    /// floor before a request tripped over them.
    pub proactive_repairs: u64,
    /// Fresh replica copies created by proactive repairs.
    pub proactive_repair_copies: u64,
}

impl StatsSnapshot {
    /// Requests served from `class`.
    pub fn count(&self, class: HitClass) -> u64 {
        self.requests_by_class[class.index()]
    }

    /// Total requests across all classes.
    pub fn total_requests(&self) -> u64 {
        self.requests_by_class.iter().sum()
    }

    /// Mean end-to-end latency in model units, recovered from the
    /// milli-unit histogram's exact sum.
    pub fn avg_latency(&self) -> f64 {
        self.latency_milli.mean() / LATENCY_MILLI_SCALE
    }

    /// Stale fraction of routed lookups (0 when there were none).
    pub fn stale_lookup_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.stale_lookups as f64 / self.lookups as f64
        }
    }

    /// Renders the snapshot as a JSON document (hand-rolled: the offline
    /// build has no serde_json).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"requests_by_class\": {");
        for (i, class) in HitClass::ALL.iter().enumerate() {
            let _ = write!(
                s,
                "{}\"{}\": {}",
                if i == 0 { "" } else { ", " },
                class.label(),
                self.count(*class)
            );
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"total_requests\": {},", self.total_requests());
        let _ = writeln!(s, "  \"avg_latency\": {:.6},", self.avg_latency());
        for (name, hist) in [
            ("latency_milli", &self.latency_milli),
            ("lookup_hops", &self.lookup_hops),
            ("destage_hops", &self.destage_hops),
        ] {
            let _ = write!(
                s,
                "  \"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
                hist.count, hist.sum, hist.max
            );
            for (i, (lo, hi, c)) in hist.nonzero_buckets().iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {c}}}",
                    if i == 0 { "" } else { ", " }
                );
            }
            s.push_str("]},\n");
        }
        let counters = self.counter_rows();
        for (i, (name, value)) in counters.iter().enumerate() {
            let _ = writeln!(
                s,
                "  \"{name}\": {value}{}",
                if i + 1 == counters.len() { "" } else { "," }
            );
        }
        s.push_str("}\n");
        s
    }

    /// Renders an aligned text table of every counter, for terminals.
    pub fn to_table(&self) -> String {
        let total = self.total_requests();
        let mut s = String::new();
        let _ = writeln!(s, "{:<14} {:>12} {:>8}", "hit class", "requests", "share");
        for class in HitClass::ALL {
            let n = self.count(class);
            let share = if total == 0 { 0.0 } else { n as f64 / total as f64 * 100.0 };
            let _ = writeln!(s, "{:<14} {:>12} {:>7.2}%", class.label(), n, share);
        }
        let _ = writeln!(s, "{:<14} {:>12}", "total", total);
        let _ = writeln!(s);
        for (name, value) in self.counter_rows() {
            let _ = writeln!(s, "{name:<28} {value:>12}");
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "lookup hops: mean {:.2}, p99 <= {}, max {}",
            self.lookup_hops.mean(),
            self.lookup_hops.quantile(0.99),
            self.lookup_hops.max
        );
        let _ = writeln!(
            s,
            "destage hops: mean {:.2}, p99 <= {}, max {}",
            self.destage_hops.mean(),
            self.destage_hops.quantile(0.99),
            self.destage_hops.max
        );
        s
    }

    /// The scalar counters as stable `(name, value)` rows.
    fn counter_rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("destages", self.destages),
            ("piggybacked_destages", self.piggybacked_destages),
            ("direct_destage_connections", self.direct_destage_connections),
            ("diverted_destages", self.diverted_destages),
            ("refreshed_destages", self.refreshed_destages),
            ("lookups", self.lookups),
            ("stale_lookups", self.stale_lookups),
            ("pushes", self.pushes),
            ("directory_probes", self.directory_probes),
            ("directory_probe_hits", self.directory_probe_hits),
            ("evictions", self.evictions),
            ("pointer_invalidations", self.pointer_invalidations),
            ("node_failures", self.node_failures),
            ("objects_lost", self.objects_lost),
            ("node_joins", self.node_joins),
            ("objects_migrated", self.objects_migrated),
            ("node_crashes", self.node_crashes),
            ("objects_at_risk", self.objects_at_risk),
            ("node_departures", self.node_departures),
            ("objects_handed_off", self.objects_handed_off),
            ("timeouts", self.timeouts),
            ("dead_node_timeouts", self.dead_node_timeouts),
            ("stale_directory_hits", self.stale_directory_hits),
            ("stale_hits_replica_served", self.stale_hits_replica_served),
            ("rereplications", self.rereplications),
            ("replica_copies", self.replica_copies),
            ("message_retries", self.message_retries),
            ("message_dedups", self.message_dedups),
            ("checksum_failures", self.checksum_failures),
            ("partitions_started", self.partitions_started),
            ("partitions_healed", self.partitions_healed),
            ("entries_reconciled", self.entries_reconciled),
            ("primaries_demoted", self.primaries_demoted),
            ("audits_challenged", self.audits_challenged),
            ("audits_failed", self.audits_failed),
            ("forged_receipts", self.forged_receipts),
            ("quarantines", self.quarantines),
            ("breaker_fast_fails", self.breaker_fast_fails),
            ("retry_budget_denials", self.retry_budget_denials),
            ("objects_lost_permanent", self.objects_lost_permanent),
            ("proactive_repairs", self.proactive_repairs),
            ("proactive_repair_copies", self.proactive_repair_copies),
        ]
    }
}

/// One entry in an [`EventLogRecorder`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimEvent {
    /// Monotone sequence number (global across proxies; gaps only at the
    /// ring's trimmed head).
    pub seq: u64,
    /// Proxy whose cluster produced the event.
    pub proxy: usize,
    /// The event payload.
    pub kind: SimEventKind,
}

/// Payload of a [`SimEvent`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimEventKind {
    /// One served request.
    Request {
        /// Where it was served from.
        class: HitClass,
        /// End-to-end model latency.
        latency: f64,
    },
    /// A structured P2P-layer event.
    P2p(P2pEvent),
}

impl SimEventKind {
    /// Stable label for the CSV `kind` column.
    pub fn kind_label(&self) -> &'static str {
        match self {
            SimEventKind::Request { .. } => "request",
            SimEventKind::P2p(e) => e.kind_label(),
        }
    }
}

/// A bounded ring buffer of structured simulation events.
///
/// Keeps the most recent `capacity` events; older events are dropped (and
/// counted — see [`dropped`](Self::dropped)). The buffer is behind a
/// mutex, so this recorder is for diagnosis runs, not throughput
/// measurement; pair it with [`StatsRecorder`] via the `(A, B)` recorder
/// when both are wanted.
#[derive(Debug)]
pub struct EventLogRecorder {
    capacity: usize,
    inner: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    seq: u64,
    buf: VecDeque<SimEvent>,
}

impl EventLogRecorder {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventLogRecorder { capacity: capacity.max(1), inner: Mutex::new(Ring::default()) }
    }

    fn push(&self, proxy: usize, kind: SimEventKind) {
        let mut ring = self.inner.lock().expect("event ring poisoned");
        let seq = ring.seq;
        ring.seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(SimEvent { seq, proxy, kind });
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event ring poisoned").buf.len()
    }

    /// True if nothing has been recorded (or everything was dropped —
    /// impossible given capacity ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded, including dropped ones.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().expect("event ring poisoned").seq
    }

    /// Events dropped off the head of the ring.
    pub fn dropped(&self) -> u64 {
        let ring = self.inner.lock().expect("event ring poisoned");
        ring.seq - ring.buf.len() as u64
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<SimEvent> {
        self.inner.lock().expect("event ring poisoned").buf.iter().copied().collect()
    }

    /// Renders the retained events as CSV
    /// (`seq,proxy,kind,class,latency,hops,detail`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("seq,proxy,kind,class,latency,hops,detail\n");
        for e in self.events() {
            let (class, latency, hops, detail) = describe(&e.kind);
            let _ = writeln!(
                s,
                "{},{},{},{class},{latency},{hops},{detail}",
                e.seq,
                e.proxy,
                e.kind.kind_label()
            );
        }
        s
    }

    /// Renders the retained events as a JSON array of objects.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[\n");
        let events = self.events();
        for (i, e) in events.iter().enumerate() {
            let (class, latency, hops, detail) = describe(&e.kind);
            let _ = write!(
                s,
                "  {{\"seq\": {}, \"proxy\": {}, \"kind\": \"{}\"",
                e.seq,
                e.proxy,
                e.kind.kind_label()
            );
            if !class.is_empty() {
                let _ = write!(s, ", \"class\": \"{class}\"");
            }
            if !latency.is_empty() {
                let _ = write!(s, ", \"latency\": {latency}");
            }
            if !hops.is_empty() {
                let _ = write!(s, ", \"hops\": {hops}");
            }
            if !detail.is_empty() {
                let _ = write!(s, ", \"detail\": \"{detail}\"");
            }
            let _ = writeln!(s, "}}{}", if i + 1 == events.len() { "" } else { "," });
        }
        s.push_str("]\n");
        s
    }

    /// Writes [`to_csv`](Self::to_csv) to `path`.
    pub fn write_csv(&self, path: &Path) -> Result<(), SimError> {
        std::fs::write(path, self.to_csv())?;
        Ok(())
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    pub fn write_json(&self, path: &Path) -> Result<(), SimError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }
}

/// Flattens an event into the shared CSV/JSON columns:
/// `(class, latency, hops, detail)`, empty strings where not applicable.
fn describe(kind: &SimEventKind) -> (String, String, String, String) {
    match kind {
        SimEventKind::Request { class, latency } => {
            (class.label().to_string(), format!("{latency:.4}"), String::new(), String::new())
        }
        SimEventKind::P2p(e) => {
            let mut hops = String::new();
            let mut flags: Vec<String> = Vec::new();
            match *e {
                P2pEvent::Destage { hops: h, piggybacked, diverted, refreshed, evicted } => {
                    hops = h.to_string();
                    if piggybacked {
                        flags.push("piggybacked".into());
                    }
                    if diverted {
                        flags.push("diverted".into());
                    }
                    if refreshed {
                        flags.push("refreshed".into());
                    }
                    if evicted {
                        flags.push("evicted".into());
                    }
                }
                P2pEvent::Lookup { hops: h, stale } => {
                    hops = h.to_string();
                    if stale {
                        flags.push("stale".into());
                    }
                }
                P2pEvent::Push { hops: h } => hops = h.to_string(),
                P2pEvent::DirectoryProbe { hit } => {
                    flags.push(if hit { "hit" } else { "miss" }.into());
                }
                P2pEvent::Eviction { pointer_invalidated } => {
                    if pointer_invalidated {
                        flags.push("pointer_invalidated".into());
                    }
                }
                P2pEvent::NodeFailed { objects_lost } => {
                    flags.push(format!("objects_lost={objects_lost}"));
                }
                P2pEvent::NodeJoined { objects_migrated } => {
                    flags.push(format!("objects_migrated={objects_migrated}"));
                }
                P2pEvent::NodeCrashed { objects_at_risk } => {
                    flags.push(format!("objects_at_risk={objects_at_risk}"));
                }
                P2pEvent::NodeDeparted { objects_handed_off } => {
                    flags.push(format!("objects_handed_off={objects_handed_off}"));
                }
                P2pEvent::TimeoutDetected { dead_node } => {
                    flags.push(if dead_node { "dead_node" } else { "transient" }.into());
                }
                P2pEvent::StaleDirectoryHit { replica_served } => {
                    flags.push(
                        if replica_served { "replica_served" } else { "server_fallback" }.into(),
                    );
                }
                P2pEvent::Rereplicated { copies } => {
                    flags.push(format!("copies={copies}"));
                }
                P2pEvent::MessageRetried { class, attempts } => {
                    flags.push(format!("class={class}"));
                    flags.push(format!("attempts={attempts}"));
                }
                P2pEvent::MessageDeduped { class } => {
                    flags.push(format!("class={class}"));
                }
                P2pEvent::ChecksumFailed { class } => {
                    flags.push(format!("class={class}"));
                }
                P2pEvent::PartitionStarted { island_a, island_b } => {
                    flags.push(format!("island_a={island_a}"));
                    flags.push(format!("island_b={island_b}"));
                }
                P2pEvent::PartitionHealed { reconciled, demoted } => {
                    flags.push(format!("reconciled={reconciled}"));
                    flags.push(format!("demoted={demoted}"));
                }
                P2pEvent::EntryReconciled { epoch } => {
                    flags.push(format!("epoch={epoch}"));
                }
                P2pEvent::PrimaryDemoted { garbage_collected } => {
                    flags.push(
                        if garbage_collected { "garbage_collected" } else { "kept_as_replica" }
                            .into(),
                    );
                }
                P2pEvent::AuditChallenged { passed } => {
                    flags.push(if passed { "passed" } else { "failed" }.into());
                }
                P2pEvent::AuditFailed { strikes } => {
                    flags.push(format!("strikes={strikes}"));
                }
                P2pEvent::ForgedReceiptDetected { entry_purged } => {
                    flags.push(
                        if entry_purged { "entry_purged" } else { "entry_already_gone" }.into(),
                    );
                }
                P2pEvent::NodeQuarantined { entries_purged, residents_parked } => {
                    flags.push(format!("entries_purged={entries_purged}"));
                    flags.push(format!("residents_parked={residents_parked}"));
                }
                P2pEvent::BreakerFastFailed { class } => {
                    flags.push(format!("class={class}"));
                }
                P2pEvent::RetryBudgetExhausted { class } => {
                    flags.push(format!("class={class}"));
                }
                P2pEvent::ObjectLost { had_replicas } => {
                    flags.push(
                        if had_replicas { "replicas_died_too" } else { "never_replicated" }.into(),
                    );
                }
                P2pEvent::ProactiveRepair { copies } => {
                    flags.push(format!("copies={copies}"));
                }
            }
            (String::new(), String::new(), hops, flags.join("|"))
        }
    }
}

impl Recorder for EventLogRecorder {
    fn request(&self, proxy: usize, class: HitClass, latency: f64) {
        self.push(proxy, SimEventKind::Request { class, latency });
    }

    fn p2p_event(&self, proxy: usize, event: P2pEvent) {
        self.push(proxy, SimEventKind::P2p(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the contract
    fn noop_is_statically_disabled() {
        assert!(!NoopRecorder::ENABLED);
        assert!(!<&NoopRecorder as Recorder>::ENABLED);
        assert!(!<Arc<NoopRecorder> as Recorder>::ENABLED);
        assert!(!<(NoopRecorder, NoopRecorder) as Recorder>::ENABLED);
        assert!(<(NoopRecorder, StatsRecorder) as Recorder>::ENABLED);
    }

    #[test]
    fn stats_recorder_counts_requests_and_latency() {
        let r = StatsRecorder::new();
        r.request(0, HitClass::LocalProxy, 1.0);
        r.request(0, HitClass::LocalProxy, 1.0);
        r.request(1, HitClass::Server, 21.0);
        let s = r.snapshot();
        assert_eq!(s.count(HitClass::LocalProxy), 2);
        assert_eq!(s.count(HitClass::Server), 1);
        assert_eq!(s.total_requests(), 3);
        assert!((s.avg_latency() - 23.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.latency_milli.max, 21_000);
    }

    #[test]
    fn stats_recorder_classifies_p2p_events() {
        let r = StatsRecorder::new();
        r.p2p_event(
            0,
            P2pEvent::Destage {
                hops: 2,
                piggybacked: true,
                diverted: true,
                refreshed: false,
                evicted: false,
            },
        );
        r.p2p_event(
            0,
            P2pEvent::Destage {
                hops: 3,
                piggybacked: false,
                diverted: false,
                refreshed: true,
                evicted: true,
            },
        );
        r.p2p_event(0, P2pEvent::Eviction { pointer_invalidated: true });
        r.p2p_event(0, P2pEvent::Lookup { hops: 1, stale: false });
        r.p2p_event(0, P2pEvent::Lookup { hops: 4, stale: true });
        r.p2p_event(0, P2pEvent::Push { hops: 4 });
        r.p2p_event(0, P2pEvent::DirectoryProbe { hit: true });
        r.p2p_event(0, P2pEvent::DirectoryProbe { hit: false });
        r.p2p_event(0, P2pEvent::NodeFailed { objects_lost: 7 });
        r.p2p_event(0, P2pEvent::NodeJoined { objects_migrated: 3 });
        r.p2p_event(0, P2pEvent::NodeCrashed { objects_at_risk: 5 });
        r.p2p_event(0, P2pEvent::NodeDeparted { objects_handed_off: 4 });
        r.p2p_event(0, P2pEvent::TimeoutDetected { dead_node: true });
        r.p2p_event(0, P2pEvent::TimeoutDetected { dead_node: false });
        r.p2p_event(0, P2pEvent::StaleDirectoryHit { replica_served: true });
        r.p2p_event(0, P2pEvent::StaleDirectoryHit { replica_served: false });
        r.p2p_event(0, P2pEvent::Rereplicated { copies: 2 });
        r.p2p_event(0, P2pEvent::PartitionStarted { island_a: 5, island_b: 3 });
        r.p2p_event(0, P2pEvent::EntryReconciled { epoch: 2 });
        r.p2p_event(0, P2pEvent::EntryReconciled { epoch: 3 });
        r.p2p_event(0, P2pEvent::PrimaryDemoted { garbage_collected: false });
        r.p2p_event(0, P2pEvent::PartitionHealed { reconciled: 2, demoted: 1 });
        let s = r.snapshot();
        assert_eq!(s.destages, 2);
        assert_eq!(s.piggybacked_destages, 1);
        assert_eq!(s.direct_destage_connections, 1);
        assert_eq!(s.diverted_destages, 1);
        assert_eq!(s.refreshed_destages, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.stale_lookups, 1);
        assert!((s.stale_lookup_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.pushes, 1);
        assert_eq!(s.directory_probes, 2);
        assert_eq!(s.directory_probe_hits, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.pointer_invalidations, 1);
        assert_eq!(s.node_failures, 1);
        assert_eq!(s.objects_lost, 7);
        assert_eq!(s.node_joins, 1);
        assert_eq!(s.objects_migrated, 3);
        assert_eq!(s.node_crashes, 1);
        assert_eq!(s.objects_at_risk, 5);
        assert_eq!(s.node_departures, 1);
        assert_eq!(s.objects_handed_off, 4);
        assert_eq!(s.timeouts, 2);
        assert_eq!(s.dead_node_timeouts, 1);
        assert_eq!(s.stale_directory_hits, 2);
        assert_eq!(s.stale_hits_replica_served, 1);
        assert_eq!(s.rereplications, 1);
        assert_eq!(s.replica_copies, 2);
        assert_eq!(s.partitions_started, 1);
        assert_eq!(s.partitions_healed, 1);
        assert_eq!(s.entries_reconciled, 2);
        assert_eq!(s.primaries_demoted, 1);
        assert_eq!(s.lookup_hops.count, 2);
        assert_eq!(s.lookup_hops.max, 4);
        assert_eq!(s.destage_hops.count, 2);
    }

    #[test]
    fn stats_snapshot_renders() {
        let r = StatsRecorder::new();
        r.request(0, HitClass::OwnP2p, 2.4);
        r.p2p_event(0, P2pEvent::Lookup { hops: 2, stale: false });
        let s = r.snapshot();
        let json = s.to_json();
        assert!(json.contains("\"own-p2p\": 1"));
        assert!(json.contains("\"stale_lookups\": 0"));
        assert!(json.contains("\"lookup_hops\""));
        assert!(json.ends_with("}\n"));
        let table = s.to_table();
        assert!(table.contains("own-p2p"));
        assert!(table.contains("stale_lookups"));
        assert!(table.contains("lookup hops"));
    }

    #[test]
    fn stats_recorder_is_thread_safe() {
        let r = StatsRecorder::new();
        std::thread::scope(|sc| {
            for p in 0..4 {
                let r = &r;
                sc.spawn(move || {
                    for _ in 0..5_000 {
                        r.request(p, HitClass::Server, 21.0);
                        r.p2p_event(p, P2pEvent::Lookup { hops: 2, stale: false });
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.total_requests(), 20_000);
        assert_eq!(s.lookups, 20_000);
    }

    #[test]
    fn event_log_ring_is_bounded() {
        let log = EventLogRecorder::new(4);
        for i in 0..10 {
            log.request(0, HitClass::Server, i as f64);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.total_recorded(), 10);
        assert_eq!(log.dropped(), 6);
        let events = log.events();
        assert_eq!(events.first().unwrap().seq, 6, "oldest retained is #6");
        assert_eq!(events.last().unwrap().seq, 9);
    }

    #[test]
    fn event_log_exports() {
        let log = EventLogRecorder::new(16);
        log.request(0, HitClass::LocalProxy, 1.0);
        log.p2p_event(
            1,
            P2pEvent::Destage {
                hops: 2,
                piggybacked: true,
                diverted: false,
                refreshed: false,
                evicted: true,
            },
        );
        log.p2p_event(1, P2pEvent::Lookup { hops: 3, stale: true });
        let csv = log.to_csv();
        assert!(csv.starts_with("seq,proxy,kind,class,latency,hops,detail\n"));
        assert!(csv.contains("0,0,request,proxy,1.0000,,"));
        assert!(csv.contains("1,1,destage,,,2,piggybacked|evicted"));
        assert!(csv.contains("2,1,lookup,,,3,stale"));
        let json = log.to_json();
        assert!(json.contains("\"kind\": \"destage\""));
        assert!(json.contains("\"detail\": \"stale\""));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn pair_recorder_fans_out() {
        let pair = (StatsRecorder::new(), EventLogRecorder::new(8));
        pair.request(0, HitClass::Server, 21.0);
        pair.p2p_event(0, P2pEvent::Push { hops: 1 });
        assert_eq!(pair.0.snapshot().total_requests(), 1);
        assert_eq!(pair.0.snapshot().pushes, 1);
        assert_eq!(pair.1.len(), 2);
    }
}
