//! FC / FC-EC: fully coordinated cooperative caching (§2, §5.1).
//!
//! "FC and FC-EC employ the cost-benefit based replacement, thereby
//! yielding the upper bound on performance benefit of cooperating proxy
//! caching without and with exploiting client caches" — §5.1. The policy
//! assumes *perfect frequency knowledge* (Lee et al. \[13\]) and coordinates
//! placement so the cluster keeps the set of object **copies** with the
//! highest aggregate latency benefit:
//!
//! * the *first* copy of object `o` anywhere in the cluster saves its home
//!   proxy's clients a server fetch and lets every other proxy fetch at
//!   `Tc` instead of `Ts`:
//!   `v₁(o) = f(o)·[Ts + (P−1)(Ts−Tc)]`;
//! * each *additional* copy only saves its proxy the inter-proxy hop:
//!   `v₊(o) = f(o)·Tc`,
//!
//! with `f(o)` the per-proxy request frequency (clients are statistically
//! identical, so one global frequency table serves all proxies). The
//! engine maintains these marginal values online: when a copy count rises
//! from 1 to 2 the surviving copy's value drops to `v₊`, when it falls
//! back to 1 it is restored to `v₁` — so replacement decisions always
//! compare true marginal benefits. Copies are stored in per-site
//! [`ValueCache`]s and an insertion happens only when it displaces a
//! lower-value copy ([`ValueCache::insert_if_beneficial`]), which is what
//! "coordinating object replacement decisions" means operationally.
//!
//! FC-EC extends each site with the unified P2P tier of §5.1: the proxy
//! tier keeps the site's highest-value copies, evictions demote into the
//! P2P tier, and P2P evictions leave the site. Tier placement only affects
//! *latency* (`Tl` vs `Tl + Tp2p`); the cluster-level value accounting is
//! per-site, matching the paper's model where proxy and client caches
//! "appear as one unified cache".

use crate::engine::SchemeEngine;
use crate::net::{HitClass, NetworkModel};
use crate::site::SiteTier;
use webcache_policy::{BoundedCache, NotBeneficial, ValueCache};
use webcache_primitives::FxHashMap;
use webcache_workload::{ObjectId, Request, Trace};

/// One proxy's storage in the FC cluster.
#[derive(Clone, Debug)]
struct CbSite {
    proxy: ValueCache<ObjectId>,
    p2p: Option<ValueCache<ObjectId>>,
}

impl CbSite {
    fn new(proxy_capacity: usize, p2p_capacity: usize) -> Self {
        CbSite {
            proxy: ValueCache::new(proxy_capacity.max(1)),
            p2p: (p2p_capacity > 0).then(|| ValueCache::new(p2p_capacity)),
        }
    }

    fn tier_of(&self, object: ObjectId) -> Option<SiteTier> {
        if self.proxy.contains(object) {
            Some(SiteTier::Proxy)
        } else if self.p2p.as_ref().is_some_and(|c| c.contains(object)) {
            Some(SiteTier::P2p)
        } else {
            None
        }
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.tier_of(object).is_some()
    }

    /// Updates the value of a resident copy (after a cluster copy-count
    /// transition).
    fn set_value(&mut self, object: ObjectId, value: f64) {
        if self.proxy.contains(object) {
            self.proxy.set_value(object, value);
        } else if let Some(p2p) = self.p2p.as_mut() {
            if p2p.contains(object) {
                p2p.set_value(object, value);
            }
        }
    }

    /// Attempts to place a copy of `object` at `value`. The proxy tier
    /// keeps the highest-value copies; displaced copies demote into the
    /// P2P tier carrying their value; the lowest-value copy leaves the
    /// site when both tiers are full. Returns `Err(())` if the copy is
    /// not worth any resident slot, else the object that left the site.
    fn insert(&mut self, object: ObjectId, value: f64) -> Result<Option<ObjectId>, NotBeneficial> {
        debug_assert!(!self.contains(object), "insert is for new copies");
        if self.proxy.has_free_space() {
            self.proxy.set_value(object, value);
            return Ok(None);
        }
        let (proxy_min, _) = self.proxy.peek_min().expect("full tier has a minimum");
        if value > proxy_min {
            let demoted = self.proxy.evict().expect("full tier evicts");
            self.proxy.set_value(object, value);
            let Some(p2p) = self.p2p.as_mut() else {
                return Ok(Some(demoted));
            };
            if p2p.has_free_space() {
                p2p.set_value(demoted, proxy_min);
                return Ok(None);
            }
            let (p2p_min, _) = p2p.peek_min().expect("full tier has a minimum");
            if proxy_min > p2p_min {
                let spilled = p2p.evict().expect("full tier evicts");
                p2p.set_value(demoted, proxy_min);
                return Ok(Some(spilled));
            }
            return Ok(Some(demoted));
        }
        // Not valuable enough for the proxy tier: try the P2P tier.
        match self.p2p.as_mut() {
            Some(p2p) => p2p.insert_if_beneficial(object, value),
            None => Err(NotBeneficial),
        }
    }

    fn len(&self) -> usize {
        self.proxy.len() + self.p2p.as_ref().map_or(0, |c| c.len())
    }
}

/// FC / FC-EC engine.
#[derive(Clone, Debug)]
pub struct CostBenefitEngine {
    sites: Vec<CbSite>,
    /// object -> proxies currently holding a copy (either tier).
    holders: FxHashMap<ObjectId, Vec<u8>>,
    /// Perfect per-object frequency knowledge (request counts).
    freq: Vec<f64>,
    first_copy_factor: f64,
    extra_copy_factor: f64,
    name: &'static str,
}

impl CostBenefitEngine {
    /// Builds an FC (or, with `p2p_capacity > 0`, FC-EC) engine.
    ///
    /// `traces` supply the perfect frequency knowledge (the whole
    /// workload's per-object request counts).
    pub fn new(
        num_proxies: usize,
        proxy_capacity: usize,
        p2p_capacity: usize,
        net: &NetworkModel,
        traces: &[Trace],
    ) -> Self {
        assert!(num_proxies > 0, "need at least one proxy");
        assert!(num_proxies <= u8::MAX as usize, "copy tracking uses u8 site ids");
        let num_objects = traces.iter().map(|t| t.num_objects).max().unwrap_or(0) as usize;
        let mut freq = vec![0.0f64; num_objects];
        for t in traces {
            for r in &t.requests {
                freq[r.object as usize] += 1.0;
            }
        }
        let p = num_proxies as f64;
        CostBenefitEngine {
            sites: (0..num_proxies).map(|_| CbSite::new(proxy_capacity, p2p_capacity)).collect(),
            holders: FxHashMap::default(),
            freq,
            first_copy_factor: net.ts + (p - 1.0) * (net.ts - net.tc),
            extra_copy_factor: net.tc,
            name: if p2p_capacity > 0 { "FC-EC" } else { "FC" },
        }
    }

    fn value(&self, object: ObjectId, copies_in_cluster: usize) -> f64 {
        let f = self.freq[object as usize];
        if copies_in_cluster <= 1 {
            f * self.first_copy_factor
        } else {
            f * self.extra_copy_factor
        }
    }

    /// Registers that `proxy` now holds a copy; fixes the values of other
    /// copies after the count transition.
    fn add_holder(&mut self, object: ObjectId, proxy: usize) {
        let holders = self.holders.entry(object).or_default();
        debug_assert!(!holders.contains(&(proxy as u8)));
        holders.push(proxy as u8);
        if holders.len() == 2 {
            // The previously lone copy is no longer marginal-first.
            let other = holders[0] as usize;
            let v = self.value(object, 2);
            self.sites[other].set_value(object, v);
        }
    }

    /// Registers that `proxy` dropped its copy; restores the lone
    /// survivor's value if the count fell to one.
    fn remove_holder(&mut self, object: ObjectId, proxy: usize) {
        let holders = self.holders.get_mut(&object).expect("displaced copy was tracked");
        let pos = holders.iter().position(|&h| h == proxy as u8).expect("holder recorded");
        holders.swap_remove(pos);
        if holders.len() == 1 {
            let survivor = holders[0] as usize;
            let v = self.value(object, 1);
            self.sites[survivor].set_value(object, v);
        } else if holders.is_empty() {
            self.holders.remove(&object);
        }
    }

    /// Attempts to place a new copy at `proxy`, maintaining cluster
    /// bookkeeping.
    fn try_place(&mut self, object: ObjectId, proxy: usize) {
        let existing = self.holders.get(&object).map_or(0, Vec::len);
        let value = self.value(object, existing + 1);
        if let Ok(displaced) = self.sites[proxy].insert(object, value) {
            self.add_holder(object, proxy);
            if let Some(d) = displaced {
                self.remove_holder(d, proxy);
            }
        }
    }

    /// Total copies resident across the cluster (tests).
    pub fn resident_copies(&self) -> usize {
        self.sites.iter().map(CbSite::len).sum()
    }

    /// Copies of `object` in the cluster (tests).
    pub fn copies_of(&self, object: ObjectId) -> usize {
        self.holders.get(&object).map_or(0, Vec::len)
    }
}

impl SchemeEngine for CostBenefitEngine {
    fn serve(&mut self, proxy: usize, request: &Request) -> HitClass {
        let object = request.object;
        if let Some(tier) = self.sites[proxy].tier_of(object) {
            return match tier {
                SiteTier::Proxy => HitClass::LocalProxy,
                SiteTier::P2p => HitClass::OwnP2p,
            };
        }
        // A copy elsewhere in the cluster?
        let remote = self
            .holders
            .get(&object)
            .and_then(|hs| hs.first().copied())
            .map(|q| (q as usize, self.sites[q as usize].tier_of(object)));
        if let Some((_, Some(tier))) = remote {
            self.try_place(object, proxy);
            return match tier {
                SiteTier::Proxy => HitClass::CoopProxy,
                SiteTier::P2p => HitClass::CoopP2p,
            };
        }
        // Server fetch; consider keeping the first copy here.
        self.try_place(object, proxy);
        HitClass::Server
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::engine::Engine;
    use crate::lfu_schemes::LfuFamilyEngine;
    use crate::metrics::{latency_gain_percent, RunMetrics};
    use crate::recorder::NoopRecorder;
    use webcache_workload::{ProWGen, ProWGenConfig};

    fn run<E: SchemeEngine + ?Sized>(e: &mut E, ts: &[Trace], net: &NetworkModel) -> RunMetrics {
        Engine::new(e, ts, net).run(&mut SimClock::compat(), &NoopRecorder)
    }

    fn traces(n: usize, requests: usize) -> Vec<Trace> {
        (0..n)
            .map(|p| {
                ProWGen::new(ProWGenConfig {
                    requests,
                    distinct_objects: 1_000,
                    seed: 7 + p as u64,
                    ..ProWGenConfig::default()
                })
                .generate()
            })
            .collect()
    }

    #[test]
    fn fc_beats_sc_and_nc() {
        // Cache at ~25% of U: the regime where perfect-frequency
        // placement dominates (at very small caches recency effects can
        // edge it out — see EXPERIMENTS.md).
        let ts = traces(2, 30_000);
        let net = NetworkModel::default();
        let nc = run(&mut LfuFamilyEngine::new(2, 120, 0, false), &ts, &net);
        let sc = run(&mut LfuFamilyEngine::new(2, 120, 0, true), &ts, &net);
        let mut fce = CostBenefitEngine::new(2, 120, 0, &net, &ts);
        let fc = run(&mut fce, &ts, &net);
        let sc_gain = latency_gain_percent(&nc, &sc);
        let fc_gain = latency_gain_percent(&nc, &fc);
        assert!(fc_gain > 0.0, "FC gain {fc_gain}");
        assert!(fc_gain >= sc_gain, "FC {fc_gain} vs SC {sc_gain}");
    }

    #[test]
    fn fc_ec_beats_fc() {
        let ts = traces(2, 30_000);
        let net = NetworkModel::default();
        let fc = run(&mut CostBenefitEngine::new(2, 30, 0, &net, &ts), &ts, &net);
        let fc_ec = run(&mut CostBenefitEngine::new(2, 30, 100, &net, &ts), &ts, &net);
        assert!(
            fc_ec.avg_latency() < fc.avg_latency(),
            "FC-EC {} vs FC {}",
            fc_ec.avg_latency(),
            fc.avg_latency()
        );
        assert!(fc_ec.count(HitClass::OwnP2p) > 0);
    }

    #[test]
    fn coordination_avoids_useless_duplicates() {
        // With tiny caches, FC should hold mostly distinct objects across
        // the cluster (duplicates only for the hottest), unlike SC which
        // duplicates everything it fetches remotely.
        let ts = traces(2, 20_000);
        let net = NetworkModel::default();
        let mut fce = CostBenefitEngine::new(2, 25, 0, &net, &ts);
        let _ = run(&mut fce, &ts, &net);
        let dup: usize = fce.holders.values().filter(|h| h.len() > 1).count();
        let total: usize = fce.holders.len();
        assert!(total > 0);
        assert!((dup as f64) < 0.5 * total as f64, "{dup}/{total} objects duplicated");
    }

    #[test]
    fn copy_count_values_transition() {
        let ts = traces(2, 5_000);
        let net = NetworkModel::default();
        let mut e = CostBenefitEngine::new(2, 10, 0, &net, &ts);
        let obj = 0u32; // most popular object
                        // Serve at proxy 0: first copy placed.
        e.serve(0, &Request { client: 0, object: obj, size: 1 });
        assert_eq!(e.copies_of(obj), 1);
        // Serve at proxy 1: remote hit, extra copy beneficial for the
        // hottest object.
        e.serve(1, &Request { client: 0, object: obj, size: 1 });
        assert_eq!(e.copies_of(obj), 2);
        // Both copies now carry the extra-copy value.
        let v0 = e.sites[0].proxy.value(obj).unwrap();
        let v1 = e.sites[1].proxy.value(obj).unwrap();
        assert!((v0 - v1).abs() < 1e-9);
        assert!((v0 - e.freq[0] * e.extra_copy_factor).abs() < 1e-9);
    }

    #[test]
    fn single_proxy_fc_is_perfect_lfu_like() {
        // With P=1 every value is f(o)·Ts: FC keeps the globally most
        // frequent objects, an upper bound on in-cache LFU.
        let ts = traces(1, 20_000);
        let net = NetworkModel::default();
        let nc = run(&mut LfuFamilyEngine::nc(1, 150), &ts, &net);
        let fc = run(&mut CostBenefitEngine::new(1, 150, 0, &net, &ts), &ts, &net);
        assert!(
            fc.avg_latency() <= nc.avg_latency() * 1.02,
            "FC {} should not lose to in-cache LFU {}",
            fc.avg_latency(),
            nc.avg_latency()
        );
    }

    #[test]
    fn resident_copies_bounded_by_capacity() {
        let ts = traces(3, 10_000);
        let net = NetworkModel::default();
        let mut e = CostBenefitEngine::new(3, 20, 10, &net, &ts);
        let _ = run(&mut e, &ts, &net);
        assert!(e.resident_copies() <= 3 * 30);
        // holders bookkeeping matches the sites.
        let tracked: usize = e.holders.values().map(Vec::len).sum();
        assert_eq!(tracked, e.resident_copies());
    }
}
