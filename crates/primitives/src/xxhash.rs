//! XXH64 — the 64-bit xxHash checksum (Collet's reference algorithm),
//! implemented from scratch like every other primitive in this crate.
//!
//! The unreliable-transport layer stamps each protocol payload (destaged
//! objects, push responses, diversion transfers) with an XXH64 digest so
//! the receiver can detect in-flight corruption and quarantine the object
//! instead of caching a damaged copy. A cryptographic hash would be
//! overkill: the threat model is bit rot on the wire, not an adversary,
//! and XXH64's avalanche guarantees make any single flipped bit change
//! the digest with probability ~1.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2)).rotate_left(31).wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
}

/// One-shot XXH64 of `data` under `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut at = 0usize;
    let mut h: u64 = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while at + 32 <= len {
            v1 = round(v1, read_u64(data, at));
            v2 = round(v2, read_u64(data, at + 8));
            v3 = round(v3, read_u64(data, at + 16));
            v4 = round(v4, read_u64(data, at + 24));
            at += 32;
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME64_5)
    };
    h = h.wrapping_add(len as u64);
    while at + 8 <= len {
        h = (h ^ round(0, read_u64(data, at)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        at += 8;
    }
    if at + 4 <= len {
        h = (h ^ u64::from(read_u32(data, at)).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        at += 4;
    }
    while at < len {
        h = (h ^ u64::from(data[at]).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
        at += 1;
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_seed_zero() {
        // Published XXH64 sanity vectors (same table the Go and C ports
        // pin); the 63-byte line exercises the 32-byte stripe loop plus
        // every tail width.
        for (input, want) in [
            ("", 0xEF46_DB37_51D8_E999u64),
            ("a", 0xD24E_C4F1_A98C_6E5B),
            ("as", 0x1C33_0FB2_D66B_E179),
            ("asd", 0x631C_37CE_72A9_7393),
            ("asdf", 0x4158_72F5_99CE_A71E),
            (
                "Call me Ishmael. Some years ago--never mind how long precisely-",
                0x02A2_E854_70D6_FD96,
            ),
        ] {
            assert_eq!(xxh64(input.as_bytes(), 0), want, "xxh64({input:?})");
        }
    }

    #[test]
    fn seed_changes_digest() {
        let data = b"the quick brown fox";
        assert_ne!(xxh64(data, 0), xxh64(data, 1));
        assert_eq!(xxh64(data, 7), xxh64(data, 7));
    }

    #[test]
    fn single_bit_flips_are_detected() {
        // The transport's whole corruption story rests on this: flip any
        // one bit of a 16-byte objectId payload and the digest moves.
        let payload = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210u128.to_le_bytes();
        let clean = xxh64(&payload, 42);
        for bit in 0..128 {
            let mut corrupted = payload;
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(xxh64(&corrupted, 42), clean, "bit {bit} flip went undetected");
        }
    }

    #[test]
    fn every_length_class_is_stable() {
        // 0..64 bytes covers: empty, byte tail, u32 tail, u64 tail, and
        // multi-stripe bodies. Pin determinism across two passes.
        let buf: Vec<u8> = (0..64u8).collect();
        for n in 0..=buf.len() {
            assert_eq!(xxh64(&buf[..n], 99), xxh64(&buf[..n], 99));
        }
    }
}
