//! Online statistics used to validate workload shape and report results.
//!
//! The workload generator's tests verify that generated traces actually have
//! the statistical properties the paper assumes (Zipf popularity slope,
//! one-timer fraction, temporal locality); those checks are built on the
//! helpers here. The benchmark harnesses also use [`OnlineStats`] to report
//! mean latencies without storing per-request samples.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Ordinary least-squares fit `y = slope * x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Least-squares regression over `(x, y)` pairs.
///
/// Used by workload tests: on a log-log plot, rank-frequency of a Zipf(α)
/// workload is a line with slope ≈ −α, so fitting the log-log scatter
/// recovers the generator's skew parameter.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (slope * p.0 + intercept)).powi(2)).sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    Some(LinearFit { slope, intercept, r2 })
}

/// Fixed-bucket histogram over `[0, bound)` with an overflow bucket.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    bound: f64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// `buckets` equal-width buckets covering `[0, bound)`.
    pub fn new(bound: f64, buckets: usize) -> Self {
        assert!(bound > 0.0 && buckets > 0);
        Histogram { bound, buckets: vec![0; buckets], overflow: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < 0.0 {
            return;
        }
        let idx = (x / self.bound * self.buckets.len() as f64) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Count landing above `bound`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`q` in 0..=1) by bucket interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0u64;
        let width = self.bound / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as f64 + 0.5) * width;
            }
        }
        self.bound
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// Number of independent shards in a [`ShardedCounter`].
///
/// Must be a power of two (shard selection masks the thread index). 16
/// shards comfortably cover the worker counts the vendored rayon stand-in
/// spawns (one per core) while keeping the counter at 1 KiB.
const COUNTER_SHARDS: usize = 16;

/// Returns a small per-thread index used to pick a counter shard.
///
/// Each thread that ever touches a sharded counter gets the next index from
/// a global sequence; masking by `COUNTER_SHARDS - 1` maps it to a shard.
/// Two threads may share a shard — that only costs contention, never
/// correctness, because shards are atomics.
fn thread_shard() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    SHARD.with(|s| *s) & (COUNTER_SHARDS - 1)
}

/// One cache-line-sized atomic cell, padded so neighbouring shards never
/// share a line (false sharing is the whole point of sharding).
#[derive(Default)]
#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// A monotonically increasing `u64` counter safe for concurrent writers.
///
/// Writers land on a per-thread shard (relaxed `fetch_add`, no cross-core
/// line bouncing under the parallel `sweep()`); readers sum the shards.
/// Reads are monotone but not a consistent snapshot while writers are
/// active — callers read after the parallel region completes.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [PaddedCell; COUNTER_SHARDS],
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the calling thread's shard.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Folds another counter's shards into this one (parallel reduction).
    pub fn merge(&self, other: &ShardedCounter) {
        for (mine, theirs) in self.shards.iter().zip(&other.shards) {
            mine.0.fetch_add(theirs.0.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShardedCounter").field(&self.get()).finish()
    }
}

/// Number of buckets in a [`Log2Histogram`]: one for zero plus one per
/// possible bit-length of a `u64` value.
pub const LOG2_BUCKETS: usize = 65;

/// A lock-free power-of-two histogram over `u64` samples.
///
/// Bucket `0` holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. All cells are relaxed atomics, so many threads can
/// record concurrently (the parallel `sweep()` shares one recorder across
/// workers). Alongside the buckets it tracks exact `count`, `sum`, and
/// `max`, so means are not quantised by the bucketing.
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls into: 0 for 0, else
    /// `64 - leading_zeros` (the value's bit length).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi]` covered by bucket `idx`
    /// (inclusive bounds; bucket 0 is `[0, 0]`).
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        assert!(idx < LOG2_BUCKETS, "bucket index {idx} out of range");
        if idx == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (idx - 1);
            let hi = if idx == 64 { u64::MAX } else { (1u64 << idx) - 1 };
            (lo, hi)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Folds another histogram into this one (parallel reduction).
    pub fn merge(&self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> Log2Snapshot {
        Log2Snapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

/// Plain-data snapshot of a [`Log2Histogram`] (no atomics, `Clone`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Snapshot {
    /// Per-bucket counts; index `i` covers [`Log2Histogram::bucket_bounds`]`(i)`.
    pub buckets: [u64; LOG2_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample seen (0 if empty).
    pub max: u64,
}

impl Log2Snapshot {
    /// Exact mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` rows, lowest first.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Log2Histogram::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Approximate quantile (`q` in 0..=1): the inclusive upper bound of
    /// the bucket containing the q-th sample, clamped to the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Log2Histogram::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..317] {
            a.push(x);
        }
        for &x in &data[317..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn linear_fit_recovers_zipf_slope() {
        // log-log rank-frequency of an ideal Zipf(0.8).
        let pts: Vec<(f64, f64)> =
            (1..=100).map(|i| ((i as f64).ln(), (i as f64).powf(-0.8).ln())).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope + 0.8).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 90.0).abs() < 2.0, "p90 {p90}");
    }

    #[test]
    fn histogram_overflow_and_negative() {
        let mut h = Histogram::new(10.0, 10);
        h.record(100.0);
        h.record(-5.0); // ignored
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn log2_bucket_of_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(7), 3);
        assert_eq!(Log2Histogram::bucket_of(8), 4);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn log2_bucket_bounds_partition_u64() {
        // Every bucket's bounds must tile the u64 range with no gaps.
        assert_eq!(Log2Histogram::bucket_bounds(0), (0, 0));
        let mut expected_lo = 1u64;
        for i in 1..LOG2_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lo");
            assert!(hi >= lo);
            // Bounds round-trip through bucket_of.
            assert_eq!(Log2Histogram::bucket_of(lo), i);
            assert_eq!(Log2Histogram::bucket_of(hi), i);
            if hi == u64::MAX {
                assert_eq!(i, LOG2_BUCKETS - 1);
                break;
            }
            expected_lo = hi + 1;
        }
    }

    #[test]
    fn log2_histogram_records_and_snapshots() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 1, 3, 5, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1019);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1019.0 / 7.0).abs() < 1e-12);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 2); // 1, 1
        assert_eq!(snap.buckets[2], 1); // 3
        assert_eq!(snap.buckets[3], 1); // 5
        assert_eq!(snap.buckets[4], 1); // 9
        assert_eq!(snap.buckets[10], 1); // 1000
        assert_eq!(snap.nonzero_buckets().len(), 6);
        // quantiles: median lands in the [2,3] bucket, p100 is the max.
        assert_eq!(snap.quantile(1.0), 1000);
        assert!(snap.quantile(0.5) <= 3);
    }

    #[test]
    fn log2_histogram_merge_matches_sequential() {
        let a = Log2Histogram::new();
        let b = Log2Histogram::new();
        let whole = Log2Histogram::new();
        for i in 0..500u64 {
            let v = (i * 7919) % 4096;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn sharded_counter_concurrent_adds() {
        let c = ShardedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn sharded_counter_merge() {
        let a = ShardedCounter::new();
        let b = ShardedCounter::new();
        a.add(5);
        b.add(7);
        // Merge from a second thread so the two counters have hot shards
        // at different indices; the merged total must still be exact.
        std::thread::scope(|s| {
            s.spawn(|| b.add(8));
        });
        a.merge(&b);
        assert_eq!(a.get(), 20);
        assert_eq!(b.get(), 15, "merge must not mutate the source");
    }

    #[test]
    fn concurrent_log2_histogram() {
        let h = Log2Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
        assert_eq!(h.max(), 3_999);
    }
}
