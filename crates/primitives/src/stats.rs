//! Online statistics used to validate workload shape and report results.
//!
//! The workload generator's tests verify that generated traces actually have
//! the statistical properties the paper assumes (Zipf popularity slope,
//! one-timer fraction, temporal locality); those checks are built on the
//! helpers here. The benchmark harnesses also use [`OnlineStats`] to report
//! mean latencies without storing per-request samples.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Ordinary least-squares fit `y = slope * x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Least-squares regression over `(x, y)` pairs.
///
/// Used by workload tests: on a log-log plot, rank-frequency of a Zipf(α)
/// workload is a line with slope ≈ −α, so fitting the log-log scatter
/// recovers the generator's skew parameter.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (slope * p.0 + intercept)).powi(2)).sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    Some(LinearFit { slope, intercept, r2 })
}

/// Fixed-bucket histogram over `[0, bound)` with an overflow bucket.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    bound: f64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// `buckets` equal-width buckets covering `[0, bound)`.
    pub fn new(bound: f64, buckets: usize) -> Self {
        assert!(bound > 0.0 && buckets > 0);
        Histogram { bound, buckets: vec![0; buckets], overflow: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < 0.0 {
            return;
        }
        let idx = (x / self.bound * self.buckets.len() as f64) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Count landing above `bound`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`q` in 0..=1) by bucket interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0u64;
        let width = self.bound / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as f64 + 0.5) * width;
            }
        }
        self.bound
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..317] {
            a.push(x);
        }
        for &x in &data[317..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn linear_fit_recovers_zipf_slope() {
        // log-log rank-frequency of an ideal Zipf(0.8).
        let pts: Vec<(f64, f64)> =
            (1..=100).map(|i| ((i as f64).ln(), (i as f64).powf(-0.8).ln())).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope + 0.8).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 90.0).abs() < 2.0, "p90 {p90}");
    }

    #[test]
    fn histogram_overflow_and_negative() {
        let mut h = Histogram::new(10.0, 10);
        h.record(100.0);
        h.record(-5.0); // ignored
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
    }
}
