//! SHA-1 implemented from the FIPS-180-1 specification.
//!
//! The paper's §4.1: *"the proxy first hashes the URL of this object into an
//! objectId using SHA-1"*. Pastry node and object identifiers are the
//! leading 128 bits of the SHA-1 digest, so the exact hash function is part
//! of the reproduced system and we implement it here rather than depend on a
//! crypto crate. SHA-1 is used purely as a uniform id-space hash (as in the
//! original Pastry/PAST papers), never for security.

/// Incremental SHA-1 hasher.
///
/// ```
/// use webcache_primitives::Sha1;
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(hex(&digest), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// fn hex(d: &[u8; 20]) -> String {
///     d.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

const H0: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 { state: H0, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Convenience: the leading 128 bits of `digest(data)` as a `u128`,
    /// which is exactly how the paper derives Pastry `objectId`s and
    /// `cacheId`s from URLs / client identities.
    pub fn digest_id128(data: &[u8]) -> u128 {
        let d = Self::digest(data);
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&d[..16]);
        u128::from_be_bytes(bytes)
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                // Buffer still partial ⇒ `data` is exhausted; falling
                // through would reset `buf_len` from the empty remainder.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Completes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would re-count the length bytes; splice them in manually.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8; 20]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&Sha1::digest(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&Sha1::digest(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        let oneshot = Sha1::digest(&data);
        // Feed in awkward chunk sizes to exercise buffering paths.
        for chunk in [1usize, 3, 63, 64, 65, 127, 997] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn id128_is_prefix_of_digest() {
        let d = Sha1::digest(b"http://example.com/index.html");
        let id = Sha1::digest_id128(b"http://example.com/index.html");
        let mut prefix = [0u8; 16];
        prefix.copy_from_slice(&d[..16]);
        assert_eq!(id, u128::from_be_bytes(prefix));
    }

    #[test]
    fn boundary_lengths_do_not_panic_and_differ() {
        // Message lengths that straddle the padding boundary (55/56/57, 63/64/65).
        let mut seen = std::collections::HashSet::new();
        for n in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 121, 128] {
            let data = vec![0xAB; n];
            assert!(seen.insert(Sha1::digest(&data)), "collision at len {n}");
        }
    }
}
