//! Fenwick (binary indexed) tree over `u64` weights with O(log n)
//! point-update and weighted sampling.
//!
//! The ProWGen generator keeps every object's *remaining reference count*
//! in one of these: drawing the next referenced object "proportional to
//! remaining references" is a prefix-sum descent, and moving an object in
//! or out of the LRU stack is a point update.

/// Fenwick tree of non-negative integer weights.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u64>,
    total: u64,
}

impl Fenwick {
    /// A tree of `n` zero weights.
    pub fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1], total: 0 }
    }

    /// Builds from initial weights in O(n).
    pub fn from_weights(weights: &[u64]) -> Self {
        let n = weights.len();
        let mut tree = vec![0u64; n + 1];
        for (i, &w) in weights.iter().enumerate() {
            tree[i + 1] += w;
            let j = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if j <= n {
                let add = tree[i + 1];
                tree[j] += add;
            }
        }
        let total = weights.iter().sum();
        Fenwick { tree, total }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds `delta` to slot `i`'s weight.
    ///
    /// # Panics
    /// Panics (in debug) if the weight would go negative.
    pub fn add(&mut self, i: usize, delta: i64) {
        debug_assert!(i < self.len());
        if delta >= 0 {
            self.total += delta as u64;
        } else {
            self.total -= (-delta) as u64;
        }
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] = (self.tree[idx] as i64 + delta) as u64;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Prefix sum of weights `0..=i`.
    pub fn prefix(&self, i: usize) -> u64 {
        let mut idx = (i + 1).min(self.len());
        let mut s = 0;
        while idx > 0 {
            s += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        s
    }

    /// Weight of slot `i`.
    pub fn get(&self, i: usize) -> u64 {
        let mut s = self.prefix(i);
        if i > 0 {
            s -= self.prefix(i - 1);
        }
        s
    }

    /// Finds the smallest `i` with `prefix(i) > target`, i.e. samples slot
    /// `i` when `target` is uniform in `[0, total)`.
    ///
    /// # Panics
    /// Panics if `target >= total()`.
    pub fn find(&self, mut target: u64) -> usize {
        assert!(target < self.total, "target {target} out of range (total {})", self.total);
        let n = self.len();
        let mut pos = 0usize;
        let mut mask = n.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos // pos is the count of slots whose cumulative weight <= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_weights_matches_incremental() {
        let w = [3u64, 0, 7, 1, 4, 0, 9];
        let a = Fenwick::from_weights(&w);
        let mut b = Fenwick::new(w.len());
        for (i, &x) in w.iter().enumerate() {
            b.add(i, x as i64);
        }
        for (i, &x) in w.iter().enumerate() {
            assert_eq!(a.prefix(i), b.prefix(i), "prefix {i}");
            assert_eq!(a.get(i), x, "get {i}");
        }
        assert_eq!(a.total(), 24);
    }

    #[test]
    fn find_selects_by_weight() {
        let f = Fenwick::from_weights(&[2, 0, 3, 1]);
        // cumulative: [2,2,5,6]
        assert_eq!(f.find(0), 0);
        assert_eq!(f.find(1), 0);
        assert_eq!(f.find(2), 2);
        assert_eq!(f.find(4), 2);
        assert_eq!(f.find(5), 3);
    }

    #[test]
    fn find_skips_zero_weights() {
        let f = Fenwick::from_weights(&[0, 0, 1, 0, 2]);
        assert_eq!(f.find(0), 2);
        assert_eq!(f.find(1), 4);
        assert_eq!(f.find(2), 4);
    }

    #[test]
    fn add_and_remove() {
        let mut f = Fenwick::new(5);
        f.add(3, 10);
        assert_eq!(f.total(), 10);
        assert_eq!(f.find(9), 3);
        f.add(3, -10);
        assert_eq!(f.total(), 0);
        f.add(0, 1);
        assert_eq!(f.find(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn find_rejects_target_at_total() {
        let f = Fenwick::from_weights(&[1, 2]);
        let _ = f.find(3);
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 2, 3, 5, 7, 100, 1000, 1023, 1025] {
            let w: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 1) % 13).collect();
            let f = Fenwick::from_weights(&w);
            let mut acc = 0u64;
            for (i, &x) in w.iter().enumerate() {
                acc += x;
                assert_eq!(f.prefix(i), acc, "n={n} i={i}");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn find_is_inverse_of_prefix(
            weights in proptest::collection::vec(0u64..50, 1..128),
        ) {
            let f = Fenwick::from_weights(&weights);
            proptest::prop_assume!(f.total() > 0);
            // Every target lands in a slot whose weight covers it.
            for target in (0..f.total()).step_by((f.total() as usize / 17).max(1)) {
                let i = f.find(target);
                proptest::prop_assert!(*weights.get(i).expect("slot in range") > 0);
                let lo = if i == 0 { 0 } else { f.prefix(i - 1) };
                proptest::prop_assert!(lo <= target && target < f.prefix(i));
            }
        }
    }
}
