//! Dependency-light building blocks shared by every crate in the
//! `webcache` workspace.
//!
//! The paper ("Exploiting Client Caches", Zhu & Hu, ICPP'03) depends on a
//! handful of classic primitives that we implement from scratch rather than
//! pull in as dependencies, because their exact behaviour is part of the
//! system being reproduced:
//!
//! * [`sha1`] — §4.1 of the paper hashes object URLs with SHA-1 to produce
//!   the 128-bit `objectId` used for Pastry routing.
//! * [`bloom`] — §4.2 proposes Bloom filters as one of the two lookup
//!   directory representations a proxy keeps for its P2P client cache.
//! * [`zipf`] — the ProWGen workload model draws object popularity from a
//!   Zipf-like distribution with tunable skew `α` (Figure 3 sweeps it).
//! * [`stats`] — online statistics used by tests and by the benchmark
//!   harnesses to validate workload shape (Zipf slope, locality, …).
//! * [`seed`] — deterministic seed derivation (and the shared seeded
//!   [`Bernoulli`] fault coin) so every experiment is reproducible
//!   bit-for-bit.
//! * [`fxhash`] — the rustc/Firefox multiply-xor hash; hot simulator maps
//!   keyed by trusted integer ids use it instead of SipHash.
//! * [`xxhash`] — XXH64 payload checksums for the unreliable-transport
//!   layer's corruption detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// How many P2P round trips a lazy timeout detection is priced at.
///
/// This is the single source of truth for the `t_timeout = 4 · Tp2p` rule
/// used everywhere a lost or unanswered P2P message is charged: the network
/// model's `t_timeout` term, the unreliable transport's retransmission
/// ladder, and the churn drill's stall accounting all derive from this
/// constant. The rationale: a timeout must dwarf a normal P2P round trip
/// (otherwise lazy detection would be free) while staying comparable to a
/// server fetch; 4 × Tp2p = 5.6 Tl sits between Tc and Ts at the paper's
/// default latency ratios.
pub const TIMEOUT_RTT_MULTIPLE: f64 = 4.0;

pub mod bloom;
pub mod fenwick;
pub mod fxhash;
pub mod seed;
pub mod sha1;
pub mod stats;
pub mod xxhash;
pub mod zipf;

pub use bloom::{BloomFilter, CountingBloomFilter};
pub use fenwick::Fenwick;
pub use fxhash::{
    FxBuildHasher, FxHashMap, FxHashSet, FxHasher, ShaIdBuildHasher, ShaIdMap, ShaIdSet,
};
pub use seed::Bernoulli;
pub use sha1::Sha1;
pub use stats::{Histogram, LinearFit, Log2Histogram, Log2Snapshot, OnlineStats, ShardedCounter};
pub use xxhash::xxh64;
pub use zipf::{AliasTable, ZipfSampler};
