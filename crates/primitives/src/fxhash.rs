//! FxHash: the multiply-xor hash used by the Rust compiler and Firefox.
//!
//! The simulator's hot paths hash small integer keys (`u32` object ids,
//! `u64` cache keys, `u128` Pastry node ids) millions of times per run.
//! SipHash — `std`'s default, chosen for HashDoS resistance — costs more
//! than the rest of a cache operation for such keys. These maps hold
//! simulator state keyed by trusted, internally generated ids, so a fast
//! non-cryptographic hash is the right trade. Implemented in-house: the
//! build environment is offline, so `rustc-hash`/`fxhash` cannot be pulled
//! from crates.io.
//!
//! The algorithm folds each word into the state with a rotate, xor, and
//! multiply by a constant derived from the golden ratio (`π ≈ 2^64/φ`),
//! exactly as rustc's `FxHasher` does.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from rustc's FxHasher (2^64 / φ, made odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation applied before each fold; spreads low-entropy input bits.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic, DoS-*unsafe* hasher for trusted integer keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, `Default`-constructible.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// on hot paths keyed by trusted integers.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An identity "hasher" for keys that are *already* uniformly random —
/// SHA-1-derived object and node ids. For such keys mixing adds nothing:
/// every bit of the input is independently uniform, so folding the halves
/// with xor preserves full entropy in both the bucket-index (low) and
/// control-byte (high) bits hashbrown consumes. Saves the two multiply
/// rounds FxHash spends per `u128` probe on paths that do several directory
/// and overlay lookups per simulated request.
///
/// Only sound for uniformly distributed keys; sequential or small-integer
/// keys must keep [`FxHasher`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShaIdHasher {
    hash: u64,
}

impl Hasher for ShaIdHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unimplemented!("ShaIdHasher is for u64/u128 id keys only");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = i;
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.hash = (i as u64) ^ ((i >> 64) as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`ShaIdHasher`].
pub type ShaIdBuildHasher = BuildHasherDefault<ShaIdHasher>;

/// A `HashMap` keyed by uniformly random (SHA-1-derived) ids.
pub type ShaIdMap<K, V> = HashMap<K, V, ShaIdBuildHasher>;

/// A `HashSet` of uniformly random (SHA-1-derived) ids.
pub type ShaIdSet<T> = HashSet<T, ShaIdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(42u64), hash_of(43u64));
        assert_ne!(hash_of(0u64), hash_of(1u64));
        assert_eq!(hash_of(7u128), hash_of(7u128));
        assert_ne!(hash_of(7u128), hash_of(7u128 << 64));
    }

    #[test]
    fn map_and_set_behave() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u128> = FxHashSet::default();
        for i in 0..1000u128 {
            s.insert(i << 64 | i);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&(5u128 << 64 | 5)));
    }

    #[test]
    fn low_entropy_keys_spread() {
        // Sequential keys must not collapse into few buckets: check that the
        // low 8 bits of the hash take many distinct values over 0..256.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u64 {
            low_bits.insert(hash_of(i) & 0xFF);
        }
        assert!(low_bits.len() > 128, "only {} distinct low bytes", low_bits.len());
    }

    #[test]
    fn byte_stream_hashing_matches_width() {
        // write() must consume arbitrary byte strings (String keys etc.).
        let mut h = FxHasher::default();
        h.write(b"hello world, this spans two chunks");
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"hello world, this spans two chunkT");
        assert_ne!(a, h2.finish());
    }
}
