//! Zipf-like discrete sampling.
//!
//! Web object popularity follows a Zipf-like distribution where the i-th
//! most popular object is requested with frequency proportional to `1/i^α`
//! (Breslau et al., INFOCOM'99 — reference \[3\] of the paper). ProWGen and
//! therefore our workload generator draw popularity ranks from this
//! distribution; Figure 3 of the paper sweeps `α ∈ {0.5, 0.7, 1.0}`.
//!
//! Two samplers are provided:
//!
//! * [`ZipfSampler`] — cumulative-table + binary search, O(log n) per draw,
//!   tiny setup cost. Good for one-off draws and tests.
//! * [`AliasTable`] — Walker/Vose alias method over an arbitrary weight
//!   vector, O(1) per draw after O(n) setup. This is what the trace
//!   generator uses in its hot loop.

use rand::Rng;

/// Cumulative-distribution Zipf sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// cdf[i] = P(rank <= i); strictly increasing, last element == 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with skew `alpha >= 0`.
    ///
    /// `alpha == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += (i as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Probability mass of rank `i` (0-based).
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Walker/Vose alias table: O(1) sampling from an arbitrary discrete
/// distribution given by non-negative weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from `weights` (need not be normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable needs at least one weight");
        assert!(weights.len() <= u32::MAX as usize, "AliasTable supports at most 2^32-1 outcomes");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0 && total.is_finite(), "weights must sum to a positive finite value");
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities: mean 1.0.
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
                w * n as f64 / total
            })
            .collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let (s, l) = (small.pop().expect("non-empty"), large.pop().expect("non-empty"));
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains (numerically ~1.0) keeps itself.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable { prob, alias }
    }

    /// Builds an alias table for Zipf(`alpha`) over `n` ranks.
    pub fn zipf(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let weights: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
        Self::new(&weights)
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no outcomes (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an outcome index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn empirical_counts(
        sample: impl Fn(&mut ChaCha8Rng) -> usize,
        n: usize,
        draws: usize,
    ) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn zipf_cdf_properties() {
        let z = ZipfSampler::new(1000, 0.7);
        assert_eq!(z.len(), 1000);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // pmf sums to 1.
        let s: f64 = (0..1000).map(|i| z.pmf(i)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank0_dominates() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        // For alpha=1, pmf(0)/pmf(1) == 2.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = ZipfSampler::new(50, 0.7);
        let freq = empirical_counts(|r| z.sample(r), 50, 200_000);
        for (i, &f) in freq.iter().enumerate() {
            assert!((f - z.pmf(i)).abs() < 0.01, "rank {i}: empirical {f} vs pmf {}", z.pmf(i));
        }
    }

    #[test]
    fn alias_empirical_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let freq = empirical_counts(|r| t.sample(r), 4, 200_000);
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            assert!((freq[i] - expect).abs() < 0.01, "outcome {i}");
        }
    }

    #[test]
    fn alias_zipf_matches_cdf_zipf() {
        let n = 200;
        let alpha = 0.9;
        let t = AliasTable::zipf(n, alpha);
        let z = ZipfSampler::new(n, alpha);
        let freq = empirical_counts(|r| t.sample(r), n, 300_000);
        for i in (0..n).step_by(17) {
            assert!((freq[i] - z.pmf(i)).abs() < 0.01, "rank {i}");
        }
    }

    #[test]
    fn alias_single_outcome() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_handles_zero_weights() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight outcome {s}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn zipf_rejects_negative_alpha() {
        let _ = ZipfSampler::new(10, -1.0);
    }

    proptest::proptest! {
        #[test]
        fn alias_never_returns_out_of_range(
            weights in proptest::collection::vec(0.0f64..100.0, 1..64),
            seed in 0u64..u64::MAX,
        ) {
            proptest::prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let t = AliasTable::new(&weights);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..256 {
                let s = t.sample(&mut rng);
                proptest::prop_assert!(s < weights.len());
            }
        }

        #[test]
        fn zipf_sample_in_range(n in 1usize..500, alpha in 0.0f64..2.0, seed in 0u64..u64::MAX) {
            let z = ZipfSampler::new(n, alpha);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..64 {
                proptest::prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
