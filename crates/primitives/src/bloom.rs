//! Bloom filters for the proxy's P2P-cache lookup directory.
//!
//! §4.2 of the paper offers two directory representations: an exact hash
//! table of objectIds and a Bloom filter, the latter trading memory for a
//! false-positive ratio (a false positive makes the proxy redirect a request
//! into the P2P client cache for an object that is not there, wasting
//! Tp2p before falling back). The directory must also support *deletion* —
//! the proxy removes entries when a client cache reports an eviction
//! (Fig. 1, step 14) — so a [`CountingBloomFilter`] is provided as well; a
//! plain [`BloomFilter`] is kept for membership-only uses and for the
//! memory-vs-FPR ablation bench.
//!
//! Keys are 128-bit objectIds (SHA-1 prefixes, uniformly distributed), so
//! the k index functions are derived with double hashing from two halves of
//! the key mixed through SplitMix64.

use crate::seed::splitmix64;
use serde::{Deserialize, Serialize};

fn index_pair(key: u128) -> (u64, u64) {
    let mut lo = key as u64;
    let mut hi = (key >> 64) as u64;
    let h1 = splitmix64(&mut lo);
    let h2 = splitmix64(&mut hi) | 1; // odd so strides cover the table
    (h1, h2)
}

#[inline]
fn nth_index(h1: u64, h2: u64, i: u64, m: u64) -> usize {
    (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize
}

/// Classic Bloom filter over 128-bit keys.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `m_bits` bits and `k` hash functions.
    pub fn new(m_bits: usize, k: u32) -> Self {
        assert!(m_bits > 0 && k > 0);
        BloomFilter { bits: vec![0; m_bits.div_ceil(64)], m: m_bits as u64, k, inserted: 0 }
    }

    /// Sizes the filter for `expected` keys at `bits_per_key` (k is chosen
    /// as the optimal `ln 2 * bits_per_key`, clamped to at least 1).
    pub fn with_capacity(expected: usize, bits_per_key: f64) -> Self {
        let m = ((expected.max(1) as f64 * bits_per_key).ceil() as usize).max(64);
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).max(1);
        Self::new(m, k)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u128) {
        let (h1, h2) = index_pair(key);
        for i in 0..self.k {
            let idx = nth_index(h1, h2, i as u64, self.m);
            self.bits[idx / 64] |= 1 << (idx % 64);
        }
        self.inserted += 1;
    }

    /// Membership test; false positives possible, false negatives not.
    pub fn contains(&self, key: u128) -> bool {
        let (h1, h2) = index_pair(key);
        (0..self.k).all(|i| {
            let idx = nth_index(h1, h2, i as u64, self.m);
            self.bits[idx / 64] & (1 << (idx % 64)) != 0
        })
    }

    /// Number of `insert` calls (not distinct keys).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Filter size in bits.
    pub fn bits(&self) -> u64 {
        self.m
    }

    /// Memory footprint of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Theoretical false-positive rate for `n` inserted keys:
    /// `(1 - e^{-kn/m})^k`.
    pub fn theoretical_fpr(&self, n: u64) -> f64 {
        let exponent = -(self.k as f64) * n as f64 / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

/// Counting Bloom filter (4-bit saturating counters) supporting deletion.
///
/// This is the variant the Hier-GD lookup directory uses: client caches
/// report evictions back to the proxy (Fig. 1 step 14), which must remove
/// the corresponding entry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    /// Two 4-bit counters per byte.
    counters: Vec<u8>,
    m: u64,
    k: u32,
    len: u64,
}

impl CountingBloomFilter {
    /// Creates a filter with `m` counters and `k` hash functions.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0);
        CountingBloomFilter { counters: vec![0; m.div_ceil(2)], m: m as u64, k, len: 0 }
    }

    /// Sizes the filter for `expected` keys at `counters_per_key` (each
    /// counter costs 4 bits of memory).
    pub fn with_capacity(expected: usize, counters_per_key: f64) -> Self {
        let m = ((expected.max(1) as f64 * counters_per_key).ceil() as usize).max(16);
        let k = ((counters_per_key * std::f64::consts::LN_2).round() as u32).max(1);
        Self::new(m, k)
    }

    fn get(&self, idx: usize) -> u8 {
        let b = self.counters[idx / 2];
        if idx.is_multiple_of(2) {
            b & 0x0F
        } else {
            b >> 4
        }
    }

    fn set(&mut self, idx: usize, v: u8) {
        debug_assert!(v <= 0x0F);
        let b = &mut self.counters[idx / 2];
        if idx.is_multiple_of(2) {
            *b = (*b & 0xF0) | v;
        } else {
            *b = (*b & 0x0F) | (v << 4);
        }
    }

    /// Inserts a key (counters saturate at 15 and then never decrement,
    /// which preserves the no-false-negative guarantee).
    pub fn insert(&mut self, key: u128) {
        let (h1, h2) = index_pair(key);
        for i in 0..self.k {
            let idx = nth_index(h1, h2, i as u64, self.m);
            let c = self.get(idx);
            if c < 0x0F {
                self.set(idx, c + 1);
            }
        }
        self.len += 1;
    }

    /// Removes a key previously inserted. Removing a key that was never
    /// inserted can introduce false negatives, so callers (the directory)
    /// must pair inserts and removes exactly.
    pub fn remove(&mut self, key: u128) {
        let (h1, h2) = index_pair(key);
        for i in 0..self.k {
            let idx = nth_index(h1, h2, i as u64, self.m);
            let c = self.get(idx);
            if c > 0 && c < 0x0F {
                self.set(idx, c - 1);
            }
        }
        self.len = self.len.saturating_sub(1);
    }

    /// Membership test; false positives possible.
    pub fn contains(&self, key: u128) -> bool {
        let (h1, h2) = index_pair(key);
        (0..self.k).all(|i| self.get(nth_index(h1, h2, i as u64, self.m)) > 0)
    }

    /// Net inserted-minus-removed count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no keys are currently counted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint of the counter array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counters.len()
    }

    /// Resets every counter to zero — used when the structure the filter
    /// summarizes is itself flushed (e.g. the whole client cluster died).
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, salt: u128) -> Vec<u128> {
        (0..n as u128).map(|i| crate::sha1::Sha1::digest_id128(&(i ^ salt).to_be_bytes())).collect()
    }

    #[test]
    fn bloom_no_false_negatives() {
        let ks = keys(1000, 0);
        let mut f = BloomFilter::with_capacity(1000, 10.0);
        for &k in &ks {
            f.insert(k);
        }
        for &k in &ks {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn bloom_fpr_close_to_theory() {
        let present = keys(5000, 1);
        let absent = keys(20000, 0xDEAD_BEEF);
        let mut f = BloomFilter::with_capacity(5000, 10.0);
        for &k in &present {
            f.insert(k);
        }
        let fp = absent.iter().filter(|&&k| f.contains(k)).count();
        let measured = fp as f64 / absent.len() as f64;
        let theory = f.theoretical_fpr(5000);
        // ~1% at 10 bits/key; allow generous slack for sampling noise.
        assert!(measured < theory * 3.0 + 0.005, "measured {measured}, theory {theory}");
    }

    #[test]
    fn bloom_more_bits_fewer_false_positives() {
        let present = keys(2000, 2);
        let absent = keys(20000, 0xFEED);
        let mut fprs = Vec::new();
        for bits_per_key in [4.0, 8.0, 16.0] {
            let mut f = BloomFilter::with_capacity(2000, bits_per_key);
            for &k in &present {
                f.insert(k);
            }
            let fp = absent.iter().filter(|&&k| f.contains(k)).count();
            fprs.push(fp as f64 / absent.len() as f64);
        }
        assert!(fprs[0] > fprs[1], "4bpk {} vs 8bpk {}", fprs[0], fprs[1]);
        assert!(fprs[1] >= fprs[2], "8bpk {} vs 16bpk {}", fprs[1], fprs[2]);
    }

    #[test]
    fn bloom_clear() {
        let mut f = BloomFilter::new(1024, 4);
        f.insert(42);
        assert!(f.contains(42));
        f.clear();
        assert!(!f.contains(42));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn counting_insert_remove_roundtrip() {
        let ks = keys(500, 3);
        let mut f = CountingBloomFilter::with_capacity(500, 16.0);
        for &k in &ks {
            f.insert(k);
        }
        assert_eq!(f.len(), 500);
        for &k in &ks {
            assert!(f.contains(k));
        }
        for &k in &ks[..250] {
            f.remove(k);
        }
        assert_eq!(f.len(), 250);
        // Remaining keys must still be found (no false negatives from
        // removing other keys).
        for &k in &ks[250..] {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn counting_removed_keys_mostly_gone() {
        let ks = keys(500, 4);
        let mut f = CountingBloomFilter::with_capacity(500, 16.0);
        for &k in &ks {
            f.insert(k);
        }
        for &k in &ks {
            f.remove(k);
        }
        assert!(f.is_empty());
        let still = ks.iter().filter(|&&k| f.contains(k)).count();
        // After removing everything only saturated counters could linger;
        // with 16 counters/key there should be none.
        assert_eq!(still, 0);
    }

    #[test]
    fn counting_duplicate_inserts_need_matching_removes() {
        let mut f = CountingBloomFilter::new(1024, 4);
        f.insert(7);
        f.insert(7);
        f.remove(7);
        assert!(f.contains(7), "one copy should remain");
        f.remove(7);
        assert!(!f.contains(7));
    }

    #[test]
    fn counting_nibble_packing() {
        let mut f = CountingBloomFilter::new(10, 1);
        // Exercise even/odd counter slots directly.
        for idx in 0..10 {
            f.set(idx, (idx % 16) as u8);
        }
        for idx in 0..10 {
            assert_eq!(f.get(idx), (idx % 16) as u8);
        }
    }

    proptest::proptest! {
        #[test]
        fn bloom_contains_everything_inserted(keys in proptest::collection::vec(proptest::prelude::any::<u128>(), 1..200)) {
            let mut f = BloomFilter::with_capacity(keys.len(), 8.0);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                proptest::prop_assert!(f.contains(k));
            }
        }

        #[test]
        fn counting_matched_pairs_restore_emptiness(
            keys in proptest::collection::vec(proptest::prelude::any::<u128>(), 1..100)
        ) {
            let mut f = CountingBloomFilter::with_capacity(keys.len(), 12.0);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                f.remove(k);
            }
            proptest::prop_assert!(f.is_empty());
        }
    }
}
