//! Bloom filters for the proxy's P2P-cache lookup directory.
//!
//! §4.2 of the paper offers two directory representations: an exact hash
//! table of objectIds and a Bloom filter, the latter trading memory for a
//! false-positive ratio (a false positive makes the proxy redirect a request
//! into the P2P client cache for an object that is not there, wasting
//! Tp2p before falling back). The directory must also support *deletion* —
//! the proxy removes entries when a client cache reports an eviction
//! (Fig. 1, step 14) — so a [`CountingBloomFilter`] is provided as well; a
//! plain [`BloomFilter`] is kept for membership-only uses and for the
//! memory-vs-FPR ablation bench.
//!
//! Keys are 128-bit objectIds (SHA-1 prefixes, uniformly distributed), so
//! the k index functions are derived with double hashing from two halves of
//! the key mixed through SplitMix64.
//!
//! Both filters use a *blocked* layout: one hash selects a 64-byte block
//! (one cache line), and all k probes land inside that block, so a
//! membership test costs one memory access instead of k scattered ones.
//! The k probes are then resolved with a fused word test
//! ([`BloomFilter::contains_all_k`] / [`CountingBloomFilter::contains_all_k`]):
//! required bits are OR-accumulated into per-word masks and checked with
//! one compare per touched word, rather than one branch per probe.
//! Blocking raises the false-positive rate slightly over a flat filter of
//! the same size (block occupancy varies around the mean); the directory
//! ablation sizes filters by counters-per-key, where the penalty is well
//! inside the measured-vs-theory slack.

use crate::seed::splitmix64;
use serde::{Deserialize, Serialize};

/// Bits per block: 64 bytes, one x86-64 cache line.
const BLOCK_BITS: u64 = 512;
/// 64-bit words per block.
const BLOCK_WORDS: usize = 8;
/// 4-bit counters per block (64 bytes).
const BLOCK_COUNTERS: u64 = 128;

fn index_pair(key: u128) -> (u64, u64) {
    let mut lo = key as u64;
    let mut hi = (key >> 64) as u64;
    let h1 = splitmix64(&mut lo);
    let h2 = splitmix64(&mut hi) | 1; // odd so strides cover the block
    (h1, h2)
}

/// The i-th in-block probe offset (double hashing; `h2` is odd, and block
/// sizes are powers of two, so consecutive probes cycle the whole block).
#[inline]
fn probe_offset(h1: u64, h2: u64, i: u64, block_len: u64) -> u64 {
    (h1 >> 32).wrapping_add(i.wrapping_mul(h2)) & (block_len - 1)
}

/// Classic Bloom filter over 128-bit keys, cache-line blocked.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    blocks: u64,
    m: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with (at least) `m_bits` bits and `k` hash
    /// functions. Capacity rounds up to whole 512-bit blocks.
    pub fn new(m_bits: usize, k: u32) -> Self {
        assert!(m_bits > 0 && k > 0);
        let blocks = (m_bits as u64).div_ceil(BLOCK_BITS);
        BloomFilter {
            bits: vec![0; blocks as usize * BLOCK_WORDS],
            blocks,
            m: blocks * BLOCK_BITS,
            k,
            inserted: 0,
        }
    }

    /// Sizes the filter for `expected` keys at `bits_per_key` (k is chosen
    /// as the optimal `ln 2 * bits_per_key`, clamped to at least 1).
    pub fn with_capacity(expected: usize, bits_per_key: f64) -> Self {
        let m = ((expected.max(1) as f64 * bits_per_key).ceil() as usize).max(64);
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).max(1);
        Self::new(m, k)
    }

    #[inline]
    fn block_base(&self, h1: u64) -> usize {
        (h1 % self.blocks) as usize * BLOCK_WORDS
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u128) {
        let (h1, h2) = index_pair(key);
        let base = self.block_base(h1);
        for i in 0..self.k {
            let off = probe_offset(h1, h2, i as u64, BLOCK_BITS);
            self.bits[base + (off / 64) as usize] |= 1 << (off % 64);
        }
        self.inserted += 1;
    }

    /// Membership test; false positives possible, false negatives not.
    #[inline]
    pub fn contains(&self, key: u128) -> bool {
        self.contains_all_k(key)
    }

    /// The fused probe: accumulates all k required bits into per-word
    /// masks over the key's block, then verifies each touched word with a
    /// single `AND`/compare — one cache line, no per-probe branches.
    #[inline]
    pub fn contains_all_k(&self, key: u128) -> bool {
        let (h1, h2) = index_pair(key);
        let base = self.block_base(h1);
        let mut need = [0u64; BLOCK_WORDS];
        for i in 0..self.k {
            let off = probe_offset(h1, h2, i as u64, BLOCK_BITS);
            need[(off / 64) as usize] |= 1 << (off % 64);
        }
        let block = &self.bits[base..base + BLOCK_WORDS];
        (0..BLOCK_WORDS).all(|w| block[w] & need[w] == need[w])
    }

    /// Number of `insert` calls (not distinct keys).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Filter size in bits (rounded up to whole blocks).
    pub fn bits(&self) -> u64 {
        self.m
    }

    /// Memory footprint of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Theoretical false-positive rate for `n` inserted keys:
    /// `(1 - e^{-kn/m})^k`. (The flat-filter formula; the blocked layout
    /// sits slightly above it because block loads vary around the mean.)
    pub fn theoretical_fpr(&self, n: u64) -> f64 {
        let exponent = -(self.k as f64) * n as f64 / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

/// Counting Bloom filter (4-bit saturating counters) supporting deletion,
/// cache-line blocked like [`BloomFilter`].
///
/// This is the variant the Hier-GD lookup directory uses: client caches
/// report evictions back to the proxy (Fig. 1 step 14), which must remove
/// the corresponding entry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    /// 4-bit counters, 16 to a word; each key's k counters share a block
    /// of [`BLOCK_COUNTERS`] (one cache line).
    words: Vec<u64>,
    blocks: u64,
    m: u64,
    k: u32,
    len: u64,
}

/// The low bit of every nibble lane in a word.
const NIBBLE_LSB: u64 = 0x1111_1111_1111_1111;

impl CountingBloomFilter {
    /// Creates a filter with (at least) `m` counters and `k` hash
    /// functions. Capacity rounds up to whole 128-counter blocks.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0);
        let blocks = (m as u64).div_ceil(BLOCK_COUNTERS);
        CountingBloomFilter {
            words: vec![0; blocks as usize * BLOCK_WORDS],
            blocks,
            m: blocks * BLOCK_COUNTERS,
            k,
            len: 0,
        }
    }

    /// Sizes the filter for `expected` keys at `counters_per_key` (each
    /// counter costs 4 bits of memory).
    pub fn with_capacity(expected: usize, counters_per_key: f64) -> Self {
        let m = ((expected.max(1) as f64 * counters_per_key).ceil() as usize).max(16);
        let k = ((counters_per_key * std::f64::consts::LN_2).round() as u32).max(1);
        Self::new(m, k)
    }

    #[inline]
    fn block_base(&self, h1: u64) -> usize {
        (h1 % self.blocks) as usize * BLOCK_WORDS
    }

    fn get(&self, idx: usize) -> u8 {
        ((self.words[idx / 16] >> (4 * (idx % 16))) & 0xF) as u8
    }

    fn set(&mut self, idx: usize, v: u8) {
        debug_assert!(v <= 0x0F);
        let w = &mut self.words[idx / 16];
        let shift = 4 * (idx % 16);
        *w = (*w & !(0xFu64 << shift)) | ((v as u64) << shift);
    }

    /// Inserts a key (counters saturate at 15 and then never decrement,
    /// which preserves the no-false-negative guarantee).
    pub fn insert(&mut self, key: u128) {
        let (h1, h2) = index_pair(key);
        let base = self.block_base(h1) * 16;
        for i in 0..self.k {
            let idx = base + probe_offset(h1, h2, i as u64, BLOCK_COUNTERS) as usize;
            let c = self.get(idx);
            if c < 0x0F {
                self.set(idx, c + 1);
            }
        }
        self.len += 1;
    }

    /// Removes a key previously inserted. Removing a key that was never
    /// inserted can introduce false negatives, so callers (the directory)
    /// must pair inserts and removes exactly.
    pub fn remove(&mut self, key: u128) {
        let (h1, h2) = index_pair(key);
        let base = self.block_base(h1) * 16;
        for i in 0..self.k {
            let idx = base + probe_offset(h1, h2, i as u64, BLOCK_COUNTERS) as usize;
            let c = self.get(idx);
            if c > 0 && c < 0x0F {
                self.set(idx, c - 1);
            }
        }
        self.len = self.len.saturating_sub(1);
    }

    /// Membership test; false positives possible.
    #[inline]
    pub fn contains(&self, key: u128) -> bool {
        self.contains_all_k(key)
    }

    /// The fused probe: collapses each nibble of the key's block to its
    /// "non-zero" bit (`n | n>>1 | n>>2 | n>>3` masked to the lane LSB),
    /// accumulates the k required lanes into per-word masks, and checks
    /// each touched word with one compare — one cache line per probe.
    #[inline]
    pub fn contains_all_k(&self, key: u128) -> bool {
        let (h1, h2) = index_pair(key);
        let base = self.block_base(h1);
        let mut need = [0u64; BLOCK_WORDS];
        for i in 0..self.k {
            let off = probe_offset(h1, h2, i as u64, BLOCK_COUNTERS);
            need[(off / 16) as usize] |= 1 << (4 * (off % 16));
        }
        let block = &self.words[base..base + BLOCK_WORDS];
        (0..BLOCK_WORDS).all(|w| {
            let x = block[w];
            let nonzero = (x | (x >> 1) | (x >> 2) | (x >> 3)) & NIBBLE_LSB;
            nonzero & need[w] == need[w]
        })
    }

    /// Number of 4-bit counters (rounded up to whole blocks).
    pub fn counters(&self) -> u64 {
        self.m
    }

    /// Net inserted-minus-removed count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no keys are currently counted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint of the counter array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Resets every counter to zero — used when the structure the filter
    /// summarizes is itself flushed (e.g. the whole client cluster died).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, salt: u128) -> Vec<u128> {
        (0..n as u128).map(|i| crate::sha1::Sha1::digest_id128(&(i ^ salt).to_be_bytes())).collect()
    }

    /// The pre-blocking flat probe scheme, kept as a membership oracle:
    /// k bit positions scattered over the whole table by double hashing.
    struct ClassicBloom {
        bits: Vec<u64>,
        m: u64,
        k: u32,
    }

    impl ClassicBloom {
        fn new(m_bits: usize, k: u32) -> Self {
            ClassicBloom { bits: vec![0; m_bits.div_ceil(64)], m: m_bits as u64, k }
        }

        fn nth(&self, h1: u64, h2: u64, i: u64) -> usize {
            (h1.wrapping_add(i.wrapping_mul(h2)) % self.m) as usize
        }

        fn insert(&mut self, key: u128) {
            let (h1, h2) = index_pair(key);
            for i in 0..self.k {
                let idx = self.nth(h1, h2, i as u64);
                self.bits[idx / 64] |= 1 << (idx % 64);
            }
        }

        fn contains(&self, key: u128) -> bool {
            let (h1, h2) = index_pair(key);
            (0..self.k).all(|i| {
                let idx = self.nth(h1, h2, i as u64);
                self.bits[idx / 64] & (1 << (idx % 64)) != 0
            })
        }
    }

    #[test]
    fn bloom_no_false_negatives() {
        let ks = keys(1000, 0);
        let mut f = BloomFilter::with_capacity(1000, 10.0);
        for &k in &ks {
            f.insert(k);
        }
        for &k in &ks {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn bloom_fpr_close_to_theory() {
        let present = keys(5000, 1);
        let absent = keys(20000, 0xDEAD_BEEF);
        let mut f = BloomFilter::with_capacity(5000, 10.0);
        for &k in &present {
            f.insert(k);
        }
        let fp = absent.iter().filter(|&&k| f.contains(k)).count();
        let measured = fp as f64 / absent.len() as f64;
        let theory = f.theoretical_fpr(5000);
        // ~1% at 10 bits/key; slack covers sampling noise plus the
        // blocked layout's occupancy-variance penalty.
        assert!(measured < theory * 3.0 + 0.005, "measured {measured}, theory {theory}");
    }

    #[test]
    fn bloom_more_bits_fewer_false_positives() {
        let present = keys(2000, 2);
        let absent = keys(20000, 0xFEED);
        let mut fprs = Vec::new();
        for bits_per_key in [4.0, 8.0, 16.0] {
            let mut f = BloomFilter::with_capacity(2000, bits_per_key);
            for &k in &present {
                f.insert(k);
            }
            let fp = absent.iter().filter(|&&k| f.contains(k)).count();
            fprs.push(fp as f64 / absent.len() as f64);
        }
        assert!(fprs[0] > fprs[1], "4bpk {} vs 8bpk {}", fprs[0], fprs[1]);
        assert!(fprs[1] >= fprs[2], "8bpk {} vs 16bpk {}", fprs[1], fprs[2]);
    }

    #[test]
    fn bloom_clear() {
        let mut f = BloomFilter::new(1024, 4);
        f.insert(42);
        assert!(f.contains(42));
        f.clear();
        assert!(!f.contains(42));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn counting_insert_remove_roundtrip() {
        let ks = keys(500, 3);
        let mut f = CountingBloomFilter::with_capacity(500, 16.0);
        for &k in &ks {
            f.insert(k);
        }
        assert_eq!(f.len(), 500);
        for &k in &ks {
            assert!(f.contains(k));
        }
        for &k in &ks[..250] {
            f.remove(k);
        }
        assert_eq!(f.len(), 250);
        // Remaining keys must still be found (no false negatives from
        // removing other keys).
        for &k in &ks[250..] {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn counting_removed_keys_mostly_gone() {
        let ks = keys(500, 4);
        let mut f = CountingBloomFilter::with_capacity(500, 16.0);
        for &k in &ks {
            f.insert(k);
        }
        for &k in &ks {
            f.remove(k);
        }
        assert!(f.is_empty());
        let still = ks.iter().filter(|&&k| f.contains(k)).count();
        // After removing everything only saturated counters could linger;
        // with 16 counters/key there should be none.
        assert_eq!(still, 0);
    }

    #[test]
    fn counting_duplicate_inserts_need_matching_removes() {
        let mut f = CountingBloomFilter::new(1024, 4);
        f.insert(7);
        f.insert(7);
        f.remove(7);
        assert!(f.contains(7), "one copy should remain");
        f.remove(7);
        assert!(!f.contains(7));
    }

    #[test]
    fn counting_nibble_packing() {
        let mut f = CountingBloomFilter::new(10, 1);
        // Exercise nibble lanes across word boundaries directly.
        for idx in 0..40 {
            f.set(idx, (idx % 16) as u8);
        }
        for idx in 0..40 {
            assert_eq!(f.get(idx), (idx % 16) as u8);
        }
    }

    #[test]
    fn blocked_probe_touches_one_cache_line() {
        // Whatever k is, all of a key's probes must land inside one
        // 64-byte block — that is the point of the blocked layout.
        for k in [1u32, 4, 8, 23] {
            let (h1, h2) = index_pair(0xABCD_EF01_2345 + k as u128);
            let offsets: Vec<u64> =
                (0..k).map(|i| probe_offset(h1, h2, i as u64, BLOCK_BITS)).collect();
            assert!(offsets.iter().all(|&o| o < BLOCK_BITS));
            if k >= 4 {
                // Double hashing with an odd stride must not collapse all
                // probes onto one bit.
                let distinct: std::collections::HashSet<u64> = offsets.iter().copied().collect();
                assert!(distinct.len() > 1, "k={k} probes all collided");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn bloom_contains_everything_inserted(keys in proptest::collection::vec(proptest::prelude::any::<u128>(), 1..200)) {
            let mut f = BloomFilter::with_capacity(keys.len(), 8.0);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                proptest::prop_assert!(f.contains(k));
            }
        }

        #[test]
        fn blocked_matches_classic_membership(
            keys in proptest::collection::vec(proptest::prelude::any::<u128>(), 1..150),
            probes in proptest::collection::vec(proptest::prelude::any::<u128>(), 1..150),
        ) {
            // Same capacity, same k: the blocked filter and the flat
            // classic oracle must agree on every inserted key (both are
            // false-negative-free), and the blocked filter's extra false
            // positives on arbitrary probes must stay within the
            // theoretical bound's slack.
            let blocked = {
                let mut f = BloomFilter::with_capacity(keys.len(), 12.0);
                for &k in &keys { f.insert(k); }
                f
            };
            let classic = {
                let mut f = ClassicBloom::new(blocked.bits() as usize, 8);
                for &k in &keys { f.insert(k); }
                f
            };
            for &k in &keys {
                proptest::prop_assert!(blocked.contains_all_k(k));
                proptest::prop_assert!(classic.contains(k));
            }
            let inserted: std::collections::HashSet<u128> = keys.iter().copied().collect();
            let fresh: Vec<u128> = probes.iter().copied().filter(|p| !inserted.contains(p)).collect();
            let fp = fresh.iter().filter(|&&p| blocked.contains_all_k(p)).count();
            // At 12 bits/key theory is ~0.03%; even tiny samples should
            // essentially never see 3+ false positives.
            proptest::prop_assert!(
                fp as f64 <= (blocked.theoretical_fpr(keys.len() as u64) * 10.0 * fresh.len() as f64) + 2.0,
                "blocked FPs {} of {}", fp, fresh.len()
            );
        }

        #[test]
        fn counting_fused_probe_no_false_negatives_under_churn(
            keys in proptest::collection::vec(proptest::prelude::any::<u128>(), 2..100)
        ) {
            // Insert everything, remove half: every remaining key must
            // still pass the fused word test.
            let mut f = CountingBloomFilter::with_capacity(keys.len(), 12.0);
            for &k in &keys { f.insert(k); }
            let half = keys.len() / 2;
            for &k in &keys[..half] { f.remove(k); }
            for &k in &keys[half..] {
                proptest::prop_assert!(f.contains_all_k(k));
            }
        }

        #[test]
        fn counting_matched_pairs_restore_emptiness(
            keys in proptest::collection::vec(proptest::prelude::any::<u128>(), 1..100)
        ) {
            let mut f = CountingBloomFilter::with_capacity(keys.len(), 12.0);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                f.remove(k);
            }
            proptest::prop_assert!(f.is_empty());
        }
    }
}
