//! Deterministic seed derivation.
//!
//! Every experiment in the reproduction must be bit-for-bit reproducible:
//! the figures in the paper are regenerated from fixed seeds, and the
//! "statistically identical clients" assumption (§5.1) is realized by giving
//! each proxy's client cluster an *independent stream from the same
//! generator*, i.e. the same master seed expanded per component.
//!
//! We use SplitMix64 for expansion: it is the standard seed-expansion
//! function (used by `rand` itself for the same purpose) and is trivially
//! portable across platforms.

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a component label.
///
/// Labels keep derivations self-documenting ("proxy-trace/3") and make it
/// impossible for two components to accidentally share a stream.
pub fn derive(master: u64, label: &str) -> u64 {
    let mut state = master ^ 0xD6E8_FEB8_6659_FD93u64;
    let mut out = splitmix64(&mut state);
    for &b in label.as_bytes() {
        state ^= u64::from(b).wrapping_mul(0x100_0000_01B3);
        out ^= splitmix64(&mut state).rotate_left(17);
    }
    // One extra mix so short labels still diffuse fully.
    state ^= out;
    splitmix64(&mut state)
}

/// Derives a numbered child seed, e.g. one per proxy or per client.
pub fn derive_indexed(master: u64, label: &str, index: u64) -> u64 {
    let mut state = derive(master, label) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// A seeded Bernoulli sampler over a private SplitMix64 stream — the one
/// loss-probability coin every fault layer flips (per-hop message loss in
/// `webcache-p2p`, the unreliable-transport fault draws, chaos plan
/// generation), so the sampling semantics cannot drift between them.
///
/// Two contracts matter for reproducibility:
///
/// * the probability is clamped to `[0, 0.999999]` (a certain event would
///   make retry loops diverge);
/// * when `p <= 0` the generator is **never advanced**, so a zero-rate
///   sampler threaded through a run leaves every other stream untouched —
///   a fault-free faulty run stays bit-identical to a plain one.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p: f64,
    state: u64,
}

impl Bernoulli {
    /// Builds a sampler with success probability `p` (clamped to
    /// `[0, 1)`; non-finite values clamp to 0) over a stream seeded with
    /// `seed`.
    pub fn new(p: f64, seed: u64) -> Self {
        let p = if p.is_finite() { p.clamp(0.0, 0.999_999) } else { 0.0 };
        Bernoulli { p, state: seed }
    }

    /// The clamped success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The current generator state (tests pin the never-advances-at-zero
    /// contract through this).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Draws one decision. Never advances the generator when `p` is zero.
    pub fn sample(&mut self) -> bool {
        if self.p <= 0.0 {
            return false;
        }
        // 53 uniform bits → [0, 1) with full f64 precision.
        let u = (splitmix64(&mut self.state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.p
    }
}

/// A named SplitMix64 stream: the raw uniform side of the fault layers'
/// randomness, companion to [`Bernoulli`] for draws that are not a coin
/// flip — target selection in the churn driver, chaos plan generation,
/// the transport's backoff jitter. Routing them all through one type
/// keeps every fault draw on the same generator and makes each stream's
/// call sequence auditable in one place.
///
/// Each method is a thin, fixed recipe over [`splitmix64`]: `next_u64`
/// advances exactly one step, `unit` maps the top 53 bits to `[0, 1)`
/// (the same mapping [`Bernoulli`] uses), `pick` reduces one draw modulo
/// `n`, and `coin` keeps one draw's low bit. Replacing an ad-hoc
/// `splitmix64(&mut state)` call site with the equivalent method is
/// therefore bit-identical — the goldens pin this.
#[derive(Clone, Copy, Debug)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// A stream starting at `state` (pass a [`derive()`]d seed to keep it
    /// label-separated from every other stream).
    pub fn new(state: u64) -> Self {
        SeedStream { state }
    }

    /// The current generator state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// One draw mapped to `[0, 1)` with full f64 precision.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One draw reduced to an index in `0..n`. `n` must be positive.
    #[inline]
    pub fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "pick from an empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// One draw reduced to a single bit (0 or 1).
    #[inline]
    pub fn coin(&mut self) -> u64 {
        self.next_u64() & 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(42, "trace"), derive(42, "trace"));
        assert_eq!(derive_indexed(42, "proxy", 3), derive_indexed(42, "proxy", 3));
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive(42, "trace"), derive(42, "overlay"));
        assert_ne!(derive(42, "a"), derive(42, "b"));
        assert_ne!(derive(42, "ab"), derive(42, "ba"));
    }

    #[test]
    fn masters_separate_streams() {
        assert_ne!(derive(1, "trace"), derive(2, "trace"));
    }

    #[test]
    fn indices_separate_streams() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_indexed(7, "client", i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn bernoulli_zero_rate_never_advances() {
        let mut b = Bernoulli::new(0.0, 42);
        for _ in 0..100 {
            assert!(!b.sample());
        }
        assert_eq!(b.state(), 42, "zero-rate samplers must not advance the stream");
    }

    #[test]
    fn bernoulli_rate_is_roughly_honored_and_deterministic() {
        let mut a = Bernoulli::new(0.1, 7);
        let mut b = Bernoulli::new(0.1, 7);
        let (mut hits, n) = (0u32, 10_000);
        for _ in 0..n {
            let ha = a.sample();
            assert_eq!(ha, b.sample(), "same seed must give the same stream");
            hits += u32::from(ha);
        }
        let rate = f64::from(hits) / f64::from(n);
        assert!((rate - 0.1).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn bernoulli_clamps_degenerate_probabilities() {
        assert_eq!(Bernoulli::new(f64::NAN, 1).p(), 0.0);
        assert_eq!(Bernoulli::new(-0.5, 1).p(), 0.0);
        assert!(Bernoulli::new(1.5, 1).p() < 1.0);
    }

    #[test]
    fn seed_stream_methods_match_their_raw_recipes() {
        // Each method must be exactly one splitmix64 step with the
        // documented reduction — drop-in replacing raw call sites relies
        // on this staying bit-identical.
        let mut raw = 0xFEED_u64;
        let mut s = SeedStream::new(0xFEED);
        let r = splitmix64(&mut raw);
        assert_eq!(s.next_u64(), r);
        let r = splitmix64(&mut raw);
        assert_eq!(s.unit(), (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64));
        let r = splitmix64(&mut raw);
        assert_eq!(s.pick(17), (r % 17) as usize);
        let r = splitmix64(&mut raw);
        assert_eq!(s.coin(), r & 1);
        assert_eq!(s.state(), raw, "four draws, four advances");
    }

    #[test]
    fn splitmix_known_sequence_changes_state() {
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        assert_ne!(s, 0);
    }
}
