//! Trace representation and analysis.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense object identifier within one trace's universe.
///
/// The simulator works in this dense space; the P2P layer maps an
/// [`ObjectId`] to its 128-bit Pastry objectId by SHA-1-hashing the
/// synthetic URL (see [`Trace::url_of`] and `webcache_p2p`).
pub type ObjectId = u32;

/// One HTTP request after the browser's *local* cache.
///
/// The paper's traces are proxy-level: requests that missed in the private
/// part of the client's browser cache. `client` identifies which of the
/// client cluster's machines issued the request — Hier-GD needs it for
/// piggyback destaging (§4.4), the unified-cache schemes ignore it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Issuing client within the cluster.
    pub client: u32,
    /// Requested object (dense id).
    pub object: ObjectId,
    /// Object size in bytes. The paper assumes unit sizes (§5.1 assumption
    /// 1); generators still attach realistic sizes so the size-aware policy
    /// code paths stay exercised.
    pub size: u32,
}

/// A request stream for one client cluster.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The request stream in arrival order.
    pub requests: Vec<Request>,
    /// Exclusive upper bound on object ids appearing in `requests`.
    pub num_objects: u32,
    /// Number of clients in the cluster (client ids are `0..num_clients`).
    pub num_clients: u32,
}

impl Trace {
    /// Builds a trace, computing `num_objects`/`num_clients` bounds.
    pub fn new(requests: Vec<Request>) -> Self {
        let num_objects = requests.iter().map(|r| r.object + 1).max().unwrap_or(0);
        let num_clients = requests.iter().map(|r| r.client + 1).max().unwrap_or(0);
        Trace { requests, num_objects, num_clients }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The synthetic URL for an object, hashed by the P2P layer into the
    /// Pastry id space exactly as §4.1 prescribes for real URLs.
    pub fn url_of(object: ObjectId) -> String {
        format!("http://origin.example/obj/{object}")
    }

    /// Serializes the trace to a compact little-endian binary stream
    /// (magic + version header, then 12 bytes per request), so generated
    /// workloads can be archived and replayed without regeneration.
    pub fn write_binary(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(Self::MAGIC)?;
        w.write_all(&1u32.to_le_bytes())?; // format version
        w.write_all(&self.num_objects.to_le_bytes())?;
        w.write_all(&self.num_clients.to_le_bytes())?;
        w.write_all(&(self.requests.len() as u64).to_le_bytes())?;
        let mut buf = std::io::BufWriter::new(w);
        for r in &self.requests {
            buf.write_all(&r.client.to_le_bytes())?;
            buf.write_all(&r.object.to_le_bytes())?;
            buf.write_all(&r.size.to_le_bytes())?;
        }
        use std::io::Write as _;
        buf.flush()
    }

    /// Reads a trace written by [`Trace::write_binary`].
    pub fn read_binary(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != Self::MAGIC {
            return Err(Error::new(ErrorKind::InvalidData, "not a webcache trace file"));
        }
        let mut word = [0u8; 4];
        r.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != 1 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("unsupported trace format version {version}"),
            ));
        }
        r.read_exact(&mut word)?;
        let num_objects = u32::from_le_bytes(word);
        r.read_exact(&mut word)?;
        let num_clients = u32::from_le_bytes(word);
        let mut len = [0u8; 8];
        r.read_exact(&mut len)?;
        let n = u64::from_le_bytes(len) as usize;
        let mut buf = std::io::BufReader::new(r);
        use std::io::Read as _;
        let mut requests = Vec::with_capacity(n.min(1 << 24));
        let mut rec = [0u8; 12];
        for _ in 0..n {
            buf.read_exact(&mut rec)?;
            let client = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
            let object = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
            let size = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]);
            if object >= num_objects || client >= num_clients {
                return Err(Error::new(ErrorKind::InvalidData, "request outside trace bounds"));
            }
            requests.push(Request { client, object, size });
        }
        Ok(Trace { requests, num_objects, num_clients })
    }

    /// File magic for the binary trace format.
    pub const MAGIC: &'static [u8; 8] = b"WCTRACE1";

    /// Computes summary statistics in one pass.
    pub fn stats(&self) -> TraceStats {
        let mut counts: HashMap<ObjectId, u32> = HashMap::with_capacity(self.num_objects as usize);
        for r in &self.requests {
            *counts.entry(r.object).or_insert(0) += 1;
        }
        let distinct = counts.len();
        let one_timers = counts.values().filter(|&&c| c == 1).count();
        let multi = distinct - one_timers;
        let max_count = counts.values().copied().max().unwrap_or(0);
        TraceStats {
            requests: self.requests.len(),
            distinct_objects: distinct,
            one_timers,
            infinite_cache_size: multi,
            max_object_refs: max_count,
            counts,
        }
    }
}

/// Summary statistics for a trace.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Total requests.
    pub requests: usize,
    /// Distinct objects referenced.
    pub distinct_objects: usize,
    /// Objects referenced exactly once.
    pub one_timers: usize,
    /// The paper's *infinite cache size* `U`: distinct objects accessed
    /// more than once (§5.1). All cache-size axes are percentages of this.
    pub infinite_cache_size: usize,
    /// Largest per-object reference count.
    pub max_object_refs: u32,
    /// Per-object reference counts.
    pub counts: HashMap<ObjectId, u32>,
}

impl TraceStats {
    /// Fraction of distinct objects that are one-timers.
    pub fn one_timer_fraction(&self) -> f64 {
        if self.distinct_objects == 0 {
            0.0
        } else {
            self.one_timers as f64 / self.distinct_objects as f64
        }
    }

    /// Per-object reference frequencies normalized by total requests,
    /// in descending order (rank 0 first). Used both by the cost-benefit
    /// policy (perfect frequency knowledge, §2) and by tests fitting the
    /// Zipf slope.
    pub fn rank_frequencies(&self) -> Vec<f64> {
        let mut counts: Vec<u32> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = self.requests.max(1) as f64;
        counts.into_iter().map(|c| c as f64 / total).collect()
    }

    /// Fits `log(freq) = slope * log(rank) + b` over the multi-reference
    /// head of the rank-frequency curve; `-slope` estimates Zipf α.
    pub fn zipf_alpha_estimate(&self) -> Option<f64> {
        let freqs = self.rank_frequencies();
        // Exclude the one-timer tail, which flattens the fit, and rank 1
        // noise; use ranks 2..=multi-ref head.
        let head = self.infinite_cache_size.min(freqs.len());
        if head < 10 {
            return None;
        }
        let pts: Vec<(f64, f64)> =
            (1..head).map(|i| ((i as f64 + 1.0).ln(), freqs[i].max(1e-12).ln())).collect();
        webcache_primitives::stats::linear_fit(&pts).map(|f| -f.slope)
    }

    /// Mean reuse distance in *requests* between successive references to
    /// the same object, over multi-reference objects. A workload with
    /// stronger temporal locality has a smaller mean reuse distance; the
    /// tests use this to verify the LRU-stack knob is monotone.
    pub fn mean_reuse_distance(trace: &Trace) -> f64 {
        let mut last_seen: HashMap<ObjectId, usize> = HashMap::new();
        let mut sum = 0.0f64;
        let mut n = 0u64;
        for (t, r) in trace.requests.iter().enumerate() {
            if let Some(prev) = last_seen.insert(r.object, t) {
                sum += (t - prev) as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(object: ObjectId) -> Request {
        Request { client: 0, object, size: 1 }
    }

    #[test]
    fn stats_counts_one_timers_and_infinite_size() {
        // objects: 0 x3, 1 x1, 2 x2, 3 x1
        let t = Trace::new(vec![req(0), req(1), req(0), req(2), req(3), req(2), req(0)]);
        let s = t.stats();
        assert_eq!(s.requests, 7);
        assert_eq!(s.distinct_objects, 4);
        assert_eq!(s.one_timers, 2);
        assert_eq!(s.infinite_cache_size, 2);
        assert_eq!(s.max_object_refs, 3);
        assert!((s.one_timer_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec![]);
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.distinct_objects, 0);
        assert_eq!(s.infinite_cache_size, 0);
        assert_eq!(s.one_timer_fraction(), 0.0);
        assert!(s.rank_frequencies().is_empty());
        assert!(s.zipf_alpha_estimate().is_none());
    }

    #[test]
    fn rank_frequencies_sorted_and_normalized() {
        let t = Trace::new(vec![req(0), req(0), req(0), req(1), req(1), req(2)]);
        let f = t.stats().rank_frequencies();
        assert_eq!(f.len(), 3);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[1] - 2.0 / 6.0).abs() < 1e-12);
        assert!((f[2] - 1.0 / 6.0).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_distance_simple() {
        // 0 at t=0 and t=2 (distance 2); 0 at t=4 (distance 2).
        let t = Trace::new(vec![req(0), req(1), req(0), req(2), req(0)]);
        let d = TraceStats::mean_reuse_distance(&t);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_computed() {
        let t = Trace::new(vec![Request { client: 4, object: 9, size: 1 }]);
        assert_eq!(t.num_objects, 10);
        assert_eq!(t.num_clients, 5);
    }

    #[test]
    fn urls_distinct_per_object() {
        assert_ne!(Trace::url_of(1), Trace::url_of(2));
    }

    #[test]
    fn binary_roundtrip() {
        let t = Trace::new(vec![
            Request { client: 3, object: 7, size: 100 },
            Request { client: 0, object: 0, size: 1 },
            Request { client: 9, object: 123, size: u32::MAX },
        ]);
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        let back = Trace::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.requests, t.requests);
        assert_eq!(back.num_objects, t.num_objects);
        assert_eq!(back.num_clients, t.num_clients);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = Trace::new(vec![]);
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        let back = Trace::read_binary(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(Trace::read_binary(&mut &b"not a trace"[..]).is_err());
        // Correct magic, bogus version.
        let mut buf = Vec::new();
        buf.extend_from_slice(Trace::MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(Trace::read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_out_of_bounds_request() {
        let t = Trace::new(vec![Request { client: 0, object: 5, size: 1 }]);
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        // Corrupt the object id beyond num_objects.
        let n = buf.len();
        buf[n - 8..n - 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(Trace::read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn binary_truncated_stream_errors() {
        let t = Trace::new(vec![Request { client: 0, object: 1, size: 1 }; 10]);
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(Trace::read_binary(&mut buf.as_slice()).is_err());
    }
}
