//! Synthetic Web-proxy workload generation.
//!
//! The paper evaluates everything by trace-driven simulation over two kinds
//! of traces (§5.1):
//!
//! 1. **Synthetic workloads from ProWGen** (Busari & Williamson, INFOCOM'01)
//!    with four knobs: one-time referencing, object popularity (Zipf α),
//!    number of distinct objects, and temporal locality (a finite LRU-stack
//!    model). Defaults: 1M requests, 10,000 distinct objects, 50% one-timers
//!    and α = 0.7. [`ProWGen`] reimplements that model.
//! 2. **The UCB Home-IP trace** (18 days, 9,244,728 requests). The original
//!    trace files are no longer obtainable, so [`ucb`] synthesizes a
//!    trace with the same coarse statistics (heavier one-time referencing, a
//!    much larger object universe relative to the request count, day-scale
//!    working-set churn). See DESIGN.md, "Substitutions".
//!
//! A [`Trace`] is a flat request stream; [`TraceStats`] computes the
//! properties the simulator needs (notably the *infinite cache size*: the
//! number of distinct objects referenced more than once, which the paper
//! uses as the unit for all cache-size axes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prowgen;
pub mod sizes;
pub mod trace;
pub mod ucb;

pub use prowgen::{Diurnal, FlashCrowd, ProWGen, ProWGenConfig};
pub use sizes::{SizeDistribution, SizeModel};
pub use trace::{ObjectId, Request, Trace, TraceStats};
pub use ucb::{UcbLike, UcbLikeConfig};
