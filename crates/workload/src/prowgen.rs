//! ProWGen-style synthetic Web-proxy workload generator.
//!
//! Reimplements the workload model of Busari & Williamson, *On the
//! sensitivity of Web proxy cache performance to workload characteristics*
//! (INFOCOM 2001) — reference \[4\] of the paper — with the four knobs the
//! paper uses (§5.1):
//!
//! * **one-time referencing** — fraction of distinct objects referenced
//!   exactly once (default 50%);
//! * **object popularity** — Zipf-like with skew `α` (default 0.7;
//!   Figure 3 sweeps {0.5, 0.7, 1.0});
//! * **number of distinct objects** (default 10,000) and total requests
//!   (default 1,000,000);
//! * **temporal locality** — a finite LRU-stack model whose capacity is a
//!   percentage of the number of multi-reference objects (Figure 4 sweeps
//!   {5%, 20%, 60%}).
//!
//! An optional [`FlashCrowd`] knob layers a breaking-news burst on top:
//! inside a seeded window one previously cold object spikes to the head
//! of the popularity ranking. An optional [`Diurnal`] knob modulates the
//! request rate sinusoidally (busy hours vs. off-hours) via a monotone
//! time-warp resampling. An optional `scan_fraction` knob interleaves a
//! one-touch sequential scan (the crawler pattern). All three run as
//! post-passes with their own derived RNG streams, so traces without
//! the knobs are byte-identical to pre-knob generations.
//!
//! # Generation model (ProWGen's "dynamic" stack variant)
//!
//! 1. Objects are split into one-timers and multi-reference objects;
//!    multi-reference objects receive *assigned* reference counts
//!    proportional to a Zipf(α) over popularity ranks, scaled so that all
//!    assigned references total exactly `requests`.
//! 2. The stream is generated left to right against a finite LRU stack of
//!    recently referenced objects. At each slot the next object comes
//!    **from the stack** with probability equal to the stack members' share
//!    of all remaining references (ProWGen's dynamic model), picking stack
//!    depth `d` with probability ∝ `1/d^θ`; otherwise it comes **from the
//!    pool** of non-stack objects, weighted by remaining references (a
//!    pool draw is either an object's first reference or the re-reference
//!    of an object that was pushed off the stack earlier).
//! 3. A referenced object moves to (or enters at) the top of the stack; an
//!    exhausted object leaves it. When the stack exceeds its capacity the
//!    bottom entry is *displaced* back into the pool, keeping its remaining
//!    references.
//!
//! Every assigned reference is eventually emitted, so the realized
//! popularity distribution and one-timer fraction match the configuration
//! *exactly*; the stack capacity only redistributes reference positions in
//! time. A larger stack serves more references at short reuse distances —
//! "more objects are accessed with temporal locality", which is exactly how
//! the paper describes the knob in its Figure 4 discussion. [`GenReport`]
//! exposes stack/pool pick counts and displacement counts so tests can
//! verify the mechanics.

use crate::sizes::{SizeDistribution, SizeModel};
use crate::trace::{Request, Trace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use webcache_primitives::seed::derive;
use webcache_primitives::Fenwick;

/// A flash-crowd burst: one cold object abruptly spikes to the head of
/// the popularity ranking for a window of the trace — the breaking-news
/// pattern proxy workload studies single out because it inverts every
/// frequency-based assumption a cache has learned. Applied as a post-pass
/// over the generated stream with its own derived RNG stream, so the
/// base trace stays bit-identical whether or not the knob is on.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// First request index of the burst window.
    pub at: usize,
    /// Window length in requests (the window must lie inside the trace).
    pub span: usize,
    /// Probability that a window request is redirected to the flash
    /// object, in (0, 1].
    pub intensity: f64,
}

/// A diurnal load swing: sinusoidal request-rate modulation with the
/// given period and amplitude, realized as a monotone time-warp
/// resampling of the generated stream. The engine consumes one request
/// per round, so "rate" lives in how fast the output walks through the
/// underlying content process: at the peak of the swing many consecutive
/// requests sample a narrow neighborhood of the base stream (dense,
/// high-locality busy hours); in the trough the output skips across it
/// (sparse off-hours). The request count is preserved exactly, the
/// phase comes from a derived RNG stream, and the pass runs only when
/// the knob is set — traces without it are byte-identical to pre-knob
/// generations.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Diurnal {
    /// Swing period in requests (one simulated "day").
    pub period: usize,
    /// Peak-to-mean rate swing in (0, 1): instantaneous rate is
    /// `1 + amplitude·sin(2πk/period + φ)`.
    pub amplitude: f64,
}

/// Configuration for [`ProWGen`]. Defaults are the paper's (§5.1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProWGenConfig {
    /// Total requests to generate (paper default: 1,000,000).
    pub requests: usize,
    /// Distinct objects addressed (paper default: 10,000).
    pub distinct_objects: usize,
    /// Fraction of distinct objects referenced exactly once (default 0.5).
    pub one_time_fraction: f64,
    /// Zipf popularity skew α (default 0.7).
    pub zipf_alpha: f64,
    /// LRU stack capacity as a fraction of the number of multi-reference
    /// objects (default 0.20; Figure 4 sweeps 0.05/0.20/0.60).
    pub stack_fraction: f64,
    /// Skew θ of the stack-depth selection probability (∝ 1/d^θ).
    ///
    /// The default (1.5) is calibrated so the workload sits in the regime
    /// the paper's results assume: re-references concentrate near the top
    /// of the stack (so a larger stack means *more* requests enjoy
    /// temporal locality — the Figure 4 premise that a single cache
    /// improves with stack size) while long-run popularity still rewards
    /// the frequency-based FC policy over plain LFU sharing (Figure 2's
    /// FC ≥ SC ordering). See EXPERIMENTS.md.
    pub stack_depth_skew: f64,
    /// Clients in the cluster; each request is attributed uniformly
    /// (paper default cluster size: 100).
    pub num_clients: u32,
    /// Object size model (paper assumption: unit sizes).
    pub size_model: SizeModel,
    /// Size–popularity rank correlation in [-1, 1]; ProWGen found real
    /// traces close to 0, slightly negative (popular objects smaller).
    pub size_pop_correlation: f64,
    /// Optional flash-crowd burst. `None` (the default) performs no
    /// extra draws, so traces without the knob stay byte-identical to
    /// pre-knob generations of the same seed.
    #[serde(default)]
    pub flash_crowd: Option<FlashCrowd>,
    /// Optional diurnal load swing. `None` (the default) performs no
    /// extra draws, so traces without the knob stay byte-identical to
    /// pre-knob generations of the same seed.
    #[serde(default)]
    pub diurnal: Option<Diurnal>,
    /// Fraction of requests redirected to a one-touch sequential scan —
    /// the crawler/virus-scanner pattern that walks the object space in
    /// id order, touching each object once and never again. Scans carry
    /// zero temporal locality, so they pollute LRU-style stacks without
    /// contributing re-reference hits. Applied as a post-pass on its own
    /// derived stream (`derive(seed, "scans")`); at the default 0.0 the
    /// pass performs no draws and the trace is byte-identical to
    /// pre-knob generations of the same seed.
    #[serde(default)]
    pub scan_fraction: f64,
    /// RNG seed; every derived stream is deterministic in this.
    pub seed: u64,
}

impl Default for ProWGenConfig {
    fn default() -> Self {
        ProWGenConfig {
            requests: 1_000_000,
            distinct_objects: 10_000,
            one_time_fraction: 0.5,
            zipf_alpha: 0.7,
            stack_fraction: 0.20,
            stack_depth_skew: 1.5,
            num_clients: 100,
            size_model: SizeModel::Unit,
            size_pop_correlation: 0.0,
            flash_crowd: None,
            diurnal: None,
            scan_fraction: 0.0,
            seed: 0x5EED_2003,
        }
    }
}

impl ProWGenConfig {
    /// Validates parameter ranges; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("requests must be positive".into());
        }
        if self.distinct_objects == 0 {
            return Err("distinct_objects must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.one_time_fraction) {
            return Err("one_time_fraction must be in [0,1]".into());
        }
        if self.zipf_alpha < 0.0 || !self.zipf_alpha.is_finite() {
            return Err("zipf_alpha must be finite and >= 0".into());
        }
        if !(0.0..=1.0).contains(&self.stack_fraction) || self.stack_fraction == 0.0 {
            return Err("stack_fraction must be in (0,1]".into());
        }
        if self.stack_depth_skew < 0.0 {
            return Err("stack_depth_skew must be >= 0".into());
        }
        if self.num_clients == 0 {
            return Err("num_clients must be positive".into());
        }
        if !(-1.0..=1.0).contains(&self.size_pop_correlation) {
            return Err("size_pop_correlation must be in [-1,1]".into());
        }
        if let Some(fc) = &self.flash_crowd {
            if fc.span == 0 {
                return Err("flash_crowd span must be positive".into());
            }
            if fc.at >= self.requests || fc.span > self.requests - fc.at {
                return Err("flash_crowd window must lie inside the trace".into());
            }
            if !(fc.intensity > 0.0 && fc.intensity <= 1.0) {
                return Err("flash_crowd intensity must be in (0, 1]".into());
            }
        }
        if let Some(d) = &self.diurnal {
            if d.period < 2 || d.period > self.requests {
                return Err("diurnal period must be in [2, requests]".into());
            }
            if !(d.amplitude > 0.0 && d.amplitude < 1.0) {
                return Err("diurnal amplitude must be in (0, 1)".into());
            }
        }
        if !(0.0..1.0).contains(&self.scan_fraction) {
            return Err("scan_fraction must be in [0, 1)".into());
        }
        let n = self.distinct_objects;
        let n_one = (n as f64 * self.one_time_fraction).round() as usize;
        let n_multi = n - n_one;
        // Every object needs a first reference, every multi-ref object at
        // least one more.
        if self.requests < n + n_multi {
            return Err(format!(
                "requests ({}) must be at least distinct_objects + multi-ref objects ({})",
                self.requests,
                n + n_multi
            ));
        }
        Ok(())
    }
}

/// Counters describing how generation went; exposed for tests and analysis.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct GenReport {
    /// Multi-reference objects generated.
    pub multi_objects: usize,
    /// One-timer objects generated.
    pub one_timer_objects: usize,
    /// LRU stack capacity used.
    pub stack_capacity: usize,
    /// References served from the LRU stack (temporal-locality path).
    pub stack_picks: u64,
    /// References served from the pool (first references plus re-references
    /// of objects previously pushed off the stack).
    pub pool_picks: u64,
    /// Times a stack-bottom entry was displaced back into the pool.
    pub displacements: u64,
    /// Requests redirected to the flash-crowd object (0 without the knob).
    #[serde(default)]
    pub flash_requests: u64,
    /// The flash-crowd object, when the knob was on.
    #[serde(default)]
    pub flash_object: Option<u32>,
    /// The seeded phase (radians) of the diurnal swing, when the knob
    /// was on.
    #[serde(default)]
    pub diurnal_phase: Option<f64>,
    /// Requests redirected to the sequential scan (0 without the knob).
    #[serde(default)]
    pub scan_requests: u64,
    /// The seeded object id the scan walk started from, when the knob
    /// was on.
    #[serde(default)]
    pub scan_start: Option<u32>,
}

/// The generator. Create with [`ProWGen::new`], call [`ProWGen::generate`].
#[derive(Clone, Debug)]
pub struct ProWGen {
    cfg: ProWGenConfig,
}

impl ProWGen {
    /// Creates a generator after validating `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid; use
    /// [`ProWGenConfig::validate`] to check first.
    pub fn new(cfg: ProWGenConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ProWGenConfig: {e}");
        }
        ProWGen { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProWGenConfig {
        &self.cfg
    }

    /// Per-object assigned reference counts. Object ids `0..n_multi` are
    /// multi-reference objects in popularity-rank order; ids
    /// `n_multi..n` are one-timers. Counts sum to `requests` exactly.
    pub fn assigned_counts(&self) -> Vec<u32> {
        let cfg = &self.cfg;
        let n = cfg.distinct_objects;
        let n_one = (n as f64 * cfg.one_time_fraction).round() as usize;
        let n_multi = n - n_one;
        let mut counts = vec![1u32; n];
        if n_multi > 0 {
            let extra_total = cfg.requests - n;
            let weights: Vec<f64> =
                (1..=n_multi).map(|i| (i as f64).powf(-cfg.zipf_alpha)).collect();
            let wsum: f64 = weights.iter().sum();
            let mut assigned: u64 = 0;
            for (c, w) in counts[..n_multi].iter_mut().zip(&weights) {
                let extra = ((extra_total as f64 * w / wsum).round() as u32).max(1);
                *c = 1 + extra;
                assigned += u64::from(extra);
            }
            // Fix rounding drift so the counts sum to `requests` exactly.
            let mut diff = extra_total as i64 - assigned as i64;
            let mut idx = 0usize;
            while diff != 0 {
                if diff > 0 {
                    counts[idx % n_multi] += 1;
                    diff -= 1;
                } else if counts[idx % n_multi] > 2 {
                    counts[idx % n_multi] -= 1;
                    diff += 1;
                }
                idx += 1;
            }
        }
        counts
    }

    /// Generates a trace plus a generation report.
    pub fn generate_with_report(&self) -> (Trace, GenReport) {
        let cfg = &self.cfg;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        let n = cfg.distinct_objects;
        let n_one = (n as f64 * cfg.one_time_fraction).round() as usize;
        let n_multi = n - n_one;
        let r = cfg.requests;

        let mut remaining = self.assigned_counts();
        let sizes = self.object_sizes(&mut rng, n, n_multi);

        // Pool: remaining references of all objects *not* on the stack.
        let mut pool =
            Fenwick::from_weights(&remaining.iter().map(|&c| u64::from(c)).collect::<Vec<_>>());
        let stack_capacity = ((n_multi as f64 * cfg.stack_fraction).round() as usize).max(1);
        // Depth-selection prefix sums: prefix[d] = Σ_{j=1..d} j^-θ, so a
        // draw `u * prefix[len]` binary-searches to a depth ≤ current len.
        let mut depth_prefix = Vec::with_capacity(stack_capacity + 1);
        depth_prefix.push(0.0f64);
        for d in 1..=stack_capacity {
            depth_prefix.push(depth_prefix[d - 1] + (d as f64).powf(-cfg.stack_depth_skew));
        }

        // Stack of recently referenced, unexhausted objects; top at back.
        let mut stack: VecDeque<u32> = VecDeque::with_capacity(stack_capacity + 1);
        let mut stack_remaining: u64 = 0;
        let mut total_remaining: u64 = r as u64;

        let mut requests = Vec::with_capacity(r);
        let mut report = GenReport {
            multi_objects: n_multi,
            one_timer_objects: n_one,
            stack_capacity,
            ..GenReport::default()
        };

        for _slot in 0..r {
            debug_assert_eq!(stack_remaining + pool.total(), total_remaining);
            // Dynamic stack model: P(stack pick) = stack share of all
            // remaining references.
            let from_stack = stack_remaining > 0
                && (pool.total() == 0
                    || (rng.random::<f64>() * (total_remaining as f64)) < stack_remaining as f64);

            let object = if from_stack {
                report.stack_picks += 1;
                let len = stack.len();
                let u = rng.random::<f64>() * depth_prefix[len];
                // First depth whose cumulative weight exceeds u (1 = top).
                let d = (depth_prefix[1..=len].partition_point(|&c| c <= u) + 1).min(len);
                let idx = len - d;
                let obj = stack.remove(idx).expect("index in range");
                remaining[obj as usize] -= 1;
                stack_remaining -= 1;
                if remaining[obj as usize] > 0 {
                    stack.push_back(obj);
                } // exhausted objects leave the stack silently
                obj
            } else {
                report.pool_picks += 1;
                let target = if pool.total() == 1 { 0 } else { rng.random_range(0..pool.total()) };
                let obj = pool.find(target) as u32;
                let w = remaining[obj as usize];
                // The object joins the stack: remove all its weight from
                // the pool, then account the post-pick remainder on-stack.
                pool.add(obj as usize, -i64::from(w));
                remaining[obj as usize] -= 1;
                if remaining[obj as usize] > 0 {
                    stack.push_back(obj);
                    stack_remaining += u64::from(remaining[obj as usize]);
                    if stack.len() > stack_capacity {
                        let displaced = stack.pop_front().expect("stack non-empty after push");
                        let dw = u64::from(remaining[displaced as usize]);
                        stack_remaining -= dw;
                        pool.add(displaced as usize, dw as i64);
                        report.displacements += 1;
                    }
                }
                obj
            };
            total_remaining -= 1;

            requests.push(Request {
                client: rng.random_range(0..cfg.num_clients),
                object,
                size: sizes[object as usize],
            });
        }
        debug_assert_eq!(total_remaining, 0);

        if let Some(d) = cfg.diurnal {
            // Monotone time-warp resampling on its own derived stream
            // (see [`Diurnal`]). Each output slot advances "content
            // time" by 1/rate, normalized so the warp spans the base
            // stream exactly: peak-rate slots revisit a narrow base
            // neighborhood, trough slots skip across it. Runs before
            // the flash-crowd overlay so the burst window stays in
            // output coordinates.
            let mut drng = ChaCha8Rng::seed_from_u64(derive(cfg.seed, "diurnal"));
            let phase = drng.random::<f64>() * std::f64::consts::TAU;
            let incs: Vec<f64> = (0..r)
                .map(|k| {
                    let angle = std::f64::consts::TAU * k as f64 / d.period as f64 + phase;
                    1.0 / (1.0 + d.amplitude * angle.sin())
                })
                .collect();
            let total: f64 = incs.iter().sum();
            let scale = r as f64 / total;
            let mut pos = 0.0f64;
            requests = incs
                .iter()
                .map(|inc| {
                    let idx = (pos as usize).min(r - 1);
                    pos += inc * scale;
                    requests[idx]
                })
                .collect();
            report.diurnal_phase = Some(phase);
        }

        if let Some(fc) = cfg.flash_crowd {
            // Post-pass on its own derived stream: the base generation
            // above consumed exactly the draws it always has, so a trace
            // without the knob is byte-identical to pre-knob output.
            let mut frng = ChaCha8Rng::seed_from_u64(derive(cfg.seed, "flash-crowd"));
            // The flash object is a cold one — a one-timer when any
            // exist, otherwise from the cold half of the ranking — so
            // the burst genuinely inverts the learned popularity order.
            let flash = if n_one > 0 {
                n_multi + frng.random_range(0..n_one)
            } else {
                n_multi / 2 + frng.random_range(0..n_multi - n_multi / 2)
            } as u32;
            for req in &mut requests[fc.at..fc.at + fc.span] {
                if frng.random::<f64>() < fc.intensity {
                    req.object = flash;
                    req.size = sizes[flash as usize];
                    report.flash_requests += 1;
                }
            }
            report.flash_object = Some(flash);
        }

        if cfg.scan_fraction > 0.0 {
            // One-touch sequential scan on its own derived stream: a
            // cursor walks the object space in id order from a seeded
            // start, and each redirected slot references the next id —
            // each scanned object is touched exactly once per lap, with
            // no re-reference for a stack to exploit. Runs last so the
            // scan also perforates any flash-crowd window, as a crawler
            // would.
            let mut srng = ChaCha8Rng::seed_from_u64(derive(cfg.seed, "scans"));
            let start = srng.random_range(0..n as u32);
            let mut cursor = start;
            for req in &mut requests {
                if srng.random::<f64>() < cfg.scan_fraction {
                    req.object = cursor;
                    req.size = sizes[cursor as usize];
                    report.scan_requests += 1;
                    cursor = if cursor + 1 == n as u32 { 0 } else { cursor + 1 };
                }
            }
            report.scan_start = Some(start);
        }

        let trace = Trace { requests, num_objects: n as u32, num_clients: cfg.num_clients };
        (trace, report)
    }

    /// Generates a trace (discarding the report).
    pub fn generate(&self) -> Trace {
        self.generate_with_report().0
    }

    /// Per-object sizes honoring the size–popularity correlation knob.
    fn object_sizes(&self, rng: &mut ChaCha8Rng, n: usize, n_multi: usize) -> Vec<u32> {
        let dist = SizeDistribution::new(self.cfg.size_model);
        let mut sizes: Vec<u32> = (0..n).map(|_| dist.sample(rng)).collect();
        let rho = self.cfg.size_pop_correlation;
        if rho.abs() > 1e-9 && n_multi > 1 {
            // Sort the multi-ref objects' sizes and align with popularity
            // rank: ρ>0 ⇒ popular objects get the large sizes, ρ<0 ⇒ the
            // small ones. Each object keeps its rank-aligned size with
            // probability |ρ|, otherwise a random one — a simple knob that
            // produces the requested sign and roughly proportional rank
            // correlation.
            let mut head: Vec<u32> = sizes[..n_multi].to_vec();
            if rho > 0.0 {
                head.sort_unstable_by(|a, b| b.cmp(a));
            } else {
                head.sort_unstable();
            }
            for i in 0..n_multi {
                if rng.random::<f64>() < rho.abs() {
                    sizes[i] = head[i];
                } else {
                    sizes[i] = head[rng.random_range(0..n_multi)];
                }
            }
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceStats;

    fn small_cfg() -> ProWGenConfig {
        ProWGenConfig { requests: 60_000, distinct_objects: 2_000, ..ProWGenConfig::default() }
    }

    #[test]
    fn exact_request_count_and_universe() {
        let (t, _) = ProWGen::new(small_cfg()).generate_with_report();
        assert_eq!(t.len(), 60_000);
        let s = t.stats();
        assert_eq!(s.distinct_objects, 2_000, "every object must be introduced");
    }

    #[test]
    fn realized_counts_equal_assigned() {
        let g = ProWGen::new(small_cfg());
        let assigned = g.assigned_counts();
        let (t, _) = g.generate_with_report();
        let s = t.stats();
        for (obj, &c) in assigned.iter().enumerate() {
            assert_eq!(s.counts.get(&(obj as u32)).copied().unwrap_or(0), c, "object {obj}");
        }
    }

    #[test]
    fn assigned_counts_sum_to_requests() {
        for (r, n, otf, alpha) in [
            (60_000usize, 2_000usize, 0.5f64, 0.7f64),
            (10_000, 500, 0.3, 1.0),
            (5_000, 100, 0.9, 0.5),
        ] {
            let cfg = ProWGenConfig {
                requests: r,
                distinct_objects: n,
                one_time_fraction: otf,
                zipf_alpha: alpha,
                ..ProWGenConfig::default()
            };
            let total: u64 =
                ProWGen::new(cfg).assigned_counts().iter().map(|&c| u64::from(c)).sum();
            assert_eq!(total, r as u64);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ProWGen::new(small_cfg()).generate();
        let b = ProWGen::new(small_cfg()).generate();
        assert_eq!(a.requests, b.requests);
        let mut cfg = small_cfg();
        cfg.seed ^= 1;
        let c = ProWGen::new(cfg).generate();
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn one_timer_fraction_is_exact() {
        let (t, _) = ProWGen::new(small_cfg()).generate_with_report();
        let s = t.stats();
        assert_eq!(s.one_timers, 1_000);
        assert!((s.one_timer_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zipf_alpha_recovered_for_any_stack() {
        for alpha in [0.5f64, 0.7, 1.0] {
            for frac in [0.05f64, 0.60] {
                let cfg = ProWGenConfig {
                    requests: 200_000,
                    distinct_objects: 2_000,
                    zipf_alpha: alpha,
                    stack_fraction: frac,
                    ..ProWGenConfig::default()
                };
                let t = ProWGen::new(cfg).generate();
                let est = t.stats().zipf_alpha_estimate().expect("enough ranks");
                assert!((est - alpha).abs() < 0.18, "alpha {alpha} frac {frac}: estimated {est}");
            }
        }
    }

    #[test]
    fn small_stack_displaces_more() {
        let mut displacements = Vec::new();
        for frac in [0.05f64, 0.20, 0.60] {
            let cfg = ProWGenConfig { stack_fraction: frac, ..small_cfg() };
            let (_, rep) = ProWGen::new(cfg).generate_with_report();
            displacements.push(rep.displacements);
        }
        assert!(displacements[0] > displacements[1], "5% vs 20%: {displacements:?}");
        assert!(displacements[1] >= displacements[2], "20% vs 60%: {displacements:?}");
    }

    #[test]
    fn larger_stack_serves_more_from_stack() {
        let mut shares = Vec::new();
        for frac in [0.05f64, 0.20, 0.60] {
            let cfg = ProWGenConfig { stack_fraction: frac, ..small_cfg() };
            let (_, rep) = ProWGen::new(cfg).generate_with_report();
            shares.push(rep.stack_picks as f64 / (rep.stack_picks + rep.pool_picks) as f64);
        }
        assert!(shares[0] < shares[1] && shares[1] < shares[2], "stack shares {shares:?}");
    }

    #[test]
    fn larger_stack_shortens_reuse_distances() {
        // More stack picks ⇒ more short-distance re-references; pool
        // re-references have popularity-scale (very long) distances.
        let mut dists = Vec::new();
        for frac in [0.05f64, 0.60] {
            let cfg = ProWGenConfig { stack_fraction: frac, ..small_cfg() };
            let t = ProWGen::new(cfg).generate();
            dists.push(TraceStats::mean_reuse_distance(&t));
        }
        assert!(dists[0] > dists[1], "reuse distances {dists:?}");
    }

    #[test]
    fn clients_cover_cluster() {
        let cfg = ProWGenConfig { num_clients: 10, ..small_cfg() };
        let t = ProWGen::new(cfg).generate();
        let mut seen = [false; 10];
        for r in &t.requests {
            seen[r.client as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all clients should issue requests");
    }

    #[test]
    fn unit_sizes_by_default() {
        let t = ProWGen::new(small_cfg()).generate();
        assert!(t.requests.iter().all(|r| r.size == 1));
    }

    #[test]
    fn size_correlation_sign() {
        // ρ < 0 ⇒ popular objects smaller: mean size of top-decile ranks
        // below mean size of bottom-decile ranks (among multi-ref objects).
        let mk = |rho: f64| {
            let cfg = ProWGenConfig {
                size_model: SizeModel::prowgen_default(),
                size_pop_correlation: rho,
                ..small_cfg()
            };
            let t = ProWGen::new(cfg).generate();
            let s = t.stats();
            let mut by_count: Vec<(u32, u32)> = Vec::new(); // (count, size)
            let mut size_of = vec![0u32; t.num_objects as usize];
            for r in &t.requests {
                size_of[r.object as usize] = r.size;
            }
            for (&obj, &c) in &s.counts {
                if c > 1 {
                    by_count.push((c, size_of[obj as usize]));
                }
            }
            by_count.sort_unstable_by_key(|&(c, _)| std::cmp::Reverse(c));
            let decile = by_count.len() / 10;
            let top: f64 =
                by_count[..decile].iter().map(|&(_, s)| s as f64).sum::<f64>() / decile as f64;
            let bottom: f64 =
                by_count[by_count.len() - decile..].iter().map(|&(_, s)| s as f64).sum::<f64>()
                    / decile as f64;
            (top, bottom)
        };
        let (top_neg, bottom_neg) = mk(-0.9);
        assert!(top_neg < bottom_neg, "negative rho: top {top_neg} vs bottom {bottom_neg}");
        let (top_pos, bottom_pos) = mk(0.9);
        assert!(top_pos > bottom_pos, "positive rho: top {top_pos} vs bottom {bottom_pos}");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = |f: &dyn Fn(&mut ProWGenConfig)| {
            let mut c = ProWGenConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(&|c| c.requests = 0));
        assert!(bad(&|c| c.distinct_objects = 0));
        assert!(bad(&|c| c.one_time_fraction = 1.5));
        assert!(bad(&|c| c.zipf_alpha = -0.1));
        assert!(bad(&|c| c.stack_fraction = 0.0));
        assert!(bad(&|c| c.num_clients = 0));
        assert!(bad(&|c| c.requests = 10)); // fewer than objects
        assert!(ProWGenConfig::default().validate().is_ok());
    }

    #[test]
    fn flash_crowd_spikes_a_cold_object_and_only_inside_its_window() {
        let base = ProWGen::new(small_cfg()).generate();
        let cfg = ProWGenConfig {
            flash_crowd: Some(FlashCrowd { at: 10_000, span: 4_000, intensity: 0.9 }),
            ..small_cfg()
        };
        let (t, rep) = ProWGen::new(cfg).generate_with_report();
        // The burst is a pure overlay: everything outside the window is
        // byte-identical to the knob-free stream.
        assert_eq!(t.requests[..10_000], base.requests[..10_000]);
        assert_eq!(t.requests[14_000..], base.requests[14_000..]);
        let flash = rep.flash_object.expect("knob was on");
        let in_window =
            t.requests[10_000..14_000].iter().filter(|r| r.object == flash).count() as u64;
        assert_eq!(in_window, rep.flash_requests);
        assert!(in_window > 4_000 * 8 / 10, "the burst must dominate its window: {in_window}");
        // The flash object was cold before the burst: a one-timer.
        let base_count = base.requests.iter().filter(|r| r.object == flash).count();
        assert_eq!(base_count, 1, "object {flash} was not cold");
    }

    #[test]
    fn flash_crowd_validation() {
        let with = |fc: FlashCrowd| {
            ProWGenConfig { flash_crowd: Some(fc), ..small_cfg() }.validate().is_err()
        };
        assert!(with(FlashCrowd { at: 0, span: 0, intensity: 0.5 }));
        assert!(with(FlashCrowd { at: 60_000, span: 1, intensity: 0.5 }));
        assert!(with(FlashCrowd { at: 59_000, span: 2_000, intensity: 0.5 }));
        assert!(with(FlashCrowd { at: 0, span: 100, intensity: 0.0 }));
        assert!(with(FlashCrowd { at: 0, span: 100, intensity: 1.5 }));
        assert!(!with(FlashCrowd { at: 0, span: 60_000, intensity: 1.0 }));
    }

    #[test]
    fn diurnal_swing_is_seeded_and_modulates_locality() {
        let base = ProWGen::new(small_cfg()).generate();
        let cfg = ProWGenConfig {
            diurnal: Some(Diurnal { period: 10_000, amplitude: 0.9 }),
            ..small_cfg()
        };
        let (t, rep) = ProWGen::new(cfg.clone()).generate_with_report();
        let phase = rep.diurnal_phase.expect("knob was on");

        // Exact request count, same universe bound, deterministic.
        assert_eq!(t.len(), base.len());
        assert!(t.requests.iter().all(|r| r.object < t.num_objects));
        let (t2, rep2) = ProWGen::new(cfg.clone()).generate_with_report();
        assert_eq!(t.requests, t2.requests);
        assert_eq!(rep2.diurnal_phase, Some(phase));
        assert_ne!(t.requests, base.requests, "a 0.9 swing must reshape the stream");

        // The phase is its own derived stream: a different master seed
        // moves it.
        let other = ProWGenConfig { seed: cfg.seed ^ 1, ..cfg.clone() };
        let (_, rep3) = ProWGen::new(other).generate_with_report();
        assert_ne!(rep3.diurnal_phase, Some(phase));

        // Peak-rate slots sample a narrow base neighborhood (dense
        // re-references), trough slots skip across it: distinct objects
        // per request must be visibly lower at the peak.
        let tau = std::f64::consts::TAU;
        let mut peak = std::collections::HashSet::new();
        let mut trough = std::collections::HashSet::new();
        let (mut n_peak, mut n_trough) = (0u64, 0u64);
        for (k, r) in t.requests.iter().enumerate() {
            let s = (tau * k as f64 / 10_000.0 + phase).sin();
            if s > 0.5 {
                peak.insert(r.object);
                n_peak += 1;
            } else if s < -0.5 {
                trough.insert(r.object);
                n_trough += 1;
            }
        }
        let peak_ratio = peak.len() as f64 / n_peak as f64;
        let trough_ratio = trough.len() as f64 / n_trough as f64;
        assert!(
            peak_ratio < trough_ratio * 0.8,
            "peak distinct/request {peak_ratio:.3} should sit well below trough {trough_ratio:.3}"
        );
    }

    #[test]
    fn diurnal_validation() {
        let with =
            |d: Diurnal| ProWGenConfig { diurnal: Some(d), ..small_cfg() }.validate().is_err();
        assert!(with(Diurnal { period: 1, amplitude: 0.5 }));
        assert!(with(Diurnal { period: 100_000, amplitude: 0.5 }));
        assert!(with(Diurnal { period: 5_000, amplitude: 0.0 }));
        assert!(with(Diurnal { period: 5_000, amplitude: 1.0 }));
        assert!(!with(Diurnal { period: 5_000, amplitude: 0.99 }));
    }

    #[test]
    fn scans_are_sequential_one_touch_and_seeded() {
        let base = ProWGen::new(small_cfg()).generate();
        let cfg = ProWGenConfig { scan_fraction: 0.1, ..small_cfg() };
        let (t, rep) = ProWGen::new(cfg.clone()).generate_with_report();
        let start = rep.scan_start.expect("knob was on");

        // Roughly a tenth of the stream is scan traffic.
        assert!(rep.scan_requests > 4_000 && rep.scan_requests < 8_000, "{}", rep.scan_requests);

        // Replaying the derived stream pins the pass exactly: redirected
        // slots walk the id space sequentially from the seeded start, and
        // every slot the scan skipped is byte-identical to the knob-free
        // stream.
        use webcache_primitives::seed::derive;
        let mut srng = ChaCha8Rng::seed_from_u64(derive(cfg.seed, "scans"));
        assert_eq!(srng.random_range(0..t.num_objects), start);
        let mut cursor = start;
        let mut scanned = 0u64;
        for (ours, theirs) in t.requests.iter().zip(&base.requests) {
            if srng.random::<f64>() < 0.1 {
                assert_eq!(ours.object, cursor, "scan slot must follow the cursor walk");
                cursor = (cursor + 1) % t.num_objects;
                scanned += 1;
            } else {
                assert_eq!(ours, theirs, "non-scan slot must match the base stream");
            }
        }
        assert_eq!(scanned, rep.scan_requests);

        // Deterministic in the seed, and a different seed moves the walk.
        let (t2, rep2) = ProWGen::new(cfg.clone()).generate_with_report();
        assert_eq!(t.requests, t2.requests);
        assert_eq!(rep2.scan_start, Some(start));
        let other = ProWGenConfig { seed: cfg.seed ^ 1, ..cfg };
        let (_, rep3) = ProWGen::new(other).generate_with_report();
        assert_ne!(rep3.scan_start, Some(start));
    }

    #[test]
    fn unset_scan_fraction_is_byte_identical() {
        let base = ProWGen::new(small_cfg()).generate();
        let cfg = ProWGenConfig { scan_fraction: 0.0, ..small_cfg() };
        let (t, rep) = ProWGen::new(cfg).generate_with_report();
        assert_eq!(t.requests, base.requests);
        assert_eq!(rep.scan_requests, 0);
        assert_eq!(rep.scan_start, None);
    }

    #[test]
    fn scan_fraction_validation() {
        let with = |f: f64| ProWGenConfig { scan_fraction: f, ..small_cfg() }.validate().is_err();
        assert!(with(-0.1));
        assert!(with(1.0));
        assert!(with(1.5));
        assert!(!with(0.0));
        assert!(!with(0.99));
    }

    #[test]
    #[should_panic(expected = "invalid ProWGenConfig")]
    fn new_panics_on_invalid() {
        let _ = ProWGen::new(ProWGenConfig { requests: 0, ..ProWGenConfig::default() });
    }

    #[test]
    fn all_one_timers_workload() {
        // Degenerate but legal: every object referenced exactly once; the
        // stream is a weighted-uniform permutation of the universe.
        let cfg = ProWGenConfig {
            requests: 500,
            distinct_objects: 500,
            one_time_fraction: 1.0,
            ..ProWGenConfig::default()
        };
        let (t, rep) = ProWGen::new(cfg).generate_with_report();
        assert_eq!(t.len(), 500);
        assert_eq!(rep.multi_objects, 0);
        assert_eq!(rep.stack_picks, 0);
        assert_eq!(t.stats().one_timers, 500);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn generation_invariants(
            seed in 0u64..1_000,
            alpha in 0.3f64..1.2,
            otf in 0.0f64..0.9,
            frac in 0.05f64..1.0,
        ) {
            let cfg = ProWGenConfig {
                requests: 5_000,
                distinct_objects: 400,
                one_time_fraction: otf,
                zipf_alpha: alpha,
                stack_fraction: frac,
                seed,
                ..ProWGenConfig::default()
            };
            let (t, rep) = ProWGen::new(cfg).generate_with_report();
            proptest::prop_assert_eq!(t.len(), 5_000);
            let s = t.stats();
            proptest::prop_assert_eq!(s.distinct_objects, 400);
            proptest::prop_assert!(t.requests.iter().all(|r| r.object < 400));
            proptest::prop_assert_eq!(rep.stack_picks + rep.pool_picks, 5_000);
        }
    }
}
