//! File-size models from ProWGen.
//!
//! ProWGen models Web object sizes with a **lognormal body** and a **Pareto
//! (heavy) tail**. The paper's experiments assume unit sizes (§5.1), but the
//! generator keeps the full model so that (a) size-aware policies stay
//! exercised by tests, and (b) the optional size–popularity correlation knob
//! of ProWGen has something to correlate with.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Size model configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum SizeModel {
    /// Every object has the same size — the paper's assumption 1.
    Unit,
    /// ProWGen's hybrid: lognormal body with a Pareto tail.
    LognormalPareto {
        /// Mean of ln(size) for the body (ProWGen default ≈ 7.0 → ~1.1 KB median).
        mu: f64,
        /// Std-dev of ln(size) for the body (ProWGen default ≈ 1.4).
        sigma: f64,
        /// Fraction of objects drawn from the Pareto tail (default ≈ 0.07).
        tail_fraction: f64,
        /// Pareto shape (default ≈ 1.2; < 2 gives the heavy tail).
        tail_shape: f64,
        /// Pareto scale = minimum tail size in bytes (default ≈ 10 KB).
        tail_scale: f64,
    },
}

impl SizeModel {
    /// ProWGen's published defaults.
    pub fn prowgen_default() -> Self {
        SizeModel::LognormalPareto {
            mu: 7.0,
            sigma: 1.4,
            tail_fraction: 0.07,
            tail_shape: 1.2,
            tail_scale: 10_240.0,
        }
    }
}

/// A sampler for the configured size model.
#[derive(Clone, Debug)]
pub struct SizeDistribution {
    model: SizeModel,
}

impl SizeDistribution {
    /// Creates a sampler.
    ///
    /// # Panics
    /// Panics on non-sensical parameters (negative sigma, tail fraction
    /// outside `[0,1]`, non-positive shape/scale).
    pub fn new(model: SizeModel) -> Self {
        if let SizeModel::LognormalPareto { sigma, tail_fraction, tail_shape, tail_scale, .. } =
            model
        {
            assert!(sigma > 0.0, "sigma must be positive");
            assert!((0.0..=1.0).contains(&tail_fraction), "tail_fraction in [0,1]");
            assert!(tail_shape > 0.0 && tail_scale > 0.0, "tail shape/scale must be positive");
        }
        SizeDistribution { model }
    }

    /// Draws one object size in bytes (at least 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self.model {
            SizeModel::Unit => 1,
            SizeModel::LognormalPareto { mu, sigma, tail_fraction, tail_shape, tail_scale } => {
                let size = if rng.random::<f64>() < tail_fraction {
                    // Pareto via inverse CDF: scale / U^(1/shape).
                    let u: f64 = rng.random::<f64>().max(1e-12);
                    tail_scale / u.powf(1.0 / tail_shape)
                } else {
                    // Lognormal via Box–Muller.
                    let u1: f64 = rng.random::<f64>().max(1e-12);
                    let u2: f64 = rng.random();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    (mu + sigma * z).exp()
                };
                size.clamp(1.0, u32::MAX as f64) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn unit_sizes_are_one() {
        let d = SizeDistribution::new(SizeModel::Unit);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn lognormal_body_median_near_exp_mu() {
        let d = SizeDistribution::new(SizeModel::LognormalPareto {
            mu: 7.0,
            sigma: 1.4,
            tail_fraction: 0.0, // body only
            tail_shape: 1.2,
            tail_scale: 10_240.0,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut samples: Vec<u32> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        let expect = 7.0f64.exp();
        assert!((median / expect - 1.0).abs() < 0.1, "median {median} vs exp(mu) {expect}");
    }

    #[test]
    fn pareto_tail_produces_heavy_tail() {
        let with_tail = SizeDistribution::new(SizeModel::prowgen_default());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples: Vec<u32> = (0..50_000).map(|_| with_tail.sample(&mut rng)).collect();
        let huge = samples.iter().filter(|&&s| s > 1_000_000).count();
        // Pareto(1.2, 10KB): P(size > 1MB) ≈ (10240/1048576)^1.2 ≈ 0.39%,
        // times tail fraction 7% ≈ 0.027% — must be non-zero at 50k draws
        // with high probability, and vastly more likely than lognormal alone.
        assert!(huge > 0, "expected at least one multi-MB object");
        let max = *samples.iter().max().unwrap();
        assert!(max > 100_000, "heavy tail missing, max {max}");
    }

    #[test]
    fn sizes_at_least_one() {
        let d = SizeDistribution::new(SizeModel::prowgen_default());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!((0..10_000).all(|_| d.sample(&mut rng) >= 1));
    }

    #[test]
    #[should_panic(expected = "tail_fraction")]
    fn rejects_bad_tail_fraction() {
        let _ = SizeDistribution::new(SizeModel::LognormalPareto {
            mu: 7.0,
            sigma: 1.4,
            tail_fraction: 1.5,
            tail_shape: 1.2,
            tail_scale: 10.0,
        });
    }
}
