//! Synthetic substitute for the UCB Home-IP trace.
//!
//! The paper's Figure 2(b) uses the UC Berkeley Home-IP HTTP trace (18 days,
//! 9,244,728 requests; ITA archive, 1997). The original files are no longer
//! obtainable, so we synthesize a trace with the published coarse
//! characteristics of that trace family (dial-up/home-IP proxy logs studied
//! by Gribble & Brewer and in the ProWGen/Breslau measurement literature):
//!
//! * heavier one-time referencing than the paper's default synthetic
//!   workload (most objects are seen once);
//! * a Zipf-like popularity with α ≈ 0.8;
//! * a much larger object universe relative to the request count (the trace
//!   covers the whole Web as seen by thousands of modem users, so caches
//!   that hold 10% of the hot set are *small* relative to the universe);
//! * day-scale non-stationarity: each day's active set mixes a persistent
//!   hot core with day-specific objects that never return.
//!
//! Those are precisely the properties the paper's §5.2 uses to explain why
//! Figure 2(b)'s gains are lower and flatter than Figure 2(a)'s, so a trace
//! reproducing them preserves the comparison's shape. See DESIGN.md
//! ("Substitutions").
//!
//! Mechanically, the generator composes per-day [`ProWGen`] streams over a
//! shared global universe: a fraction of each day's objects come from the
//! persistent core (stable popularity ranks), the rest are fresh objects
//! unique to the day.

use crate::prowgen::{ProWGen, ProWGenConfig};
use crate::sizes::SizeModel;
use crate::trace::{Request, Trace};
use serde::{Deserialize, Serialize};

/// Configuration for the UCB-like synthetic trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UcbLikeConfig {
    /// Total requests (default 2,000,000 — a laptop-friendly scale-down of
    /// the original 9.24M; `--full` harness runs use 9,244,728).
    pub requests: usize,
    /// Simulated days (the original trace spans 18).
    pub days: usize,
    /// Distinct objects in the persistent hot core shared by all days.
    pub core_objects: usize,
    /// Distinct day-local objects introduced per day.
    pub fresh_objects_per_day: usize,
    /// Fraction of each day's requests addressed to the persistent core.
    pub core_request_fraction: f64,
    /// Zipf α of the core popularity (measurements of home-IP traces put
    /// this near 0.8).
    pub zipf_alpha: f64,
    /// One-time fraction among day-local objects.
    pub fresh_one_time_fraction: f64,
    /// Clients in the cluster.
    pub num_clients: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UcbLikeConfig {
    fn default() -> Self {
        UcbLikeConfig {
            requests: 2_000_000,
            days: 18,
            core_objects: 30_000,
            fresh_objects_per_day: 20_000,
            core_request_fraction: 0.30,
            zipf_alpha: 0.8,
            fresh_one_time_fraction: 0.80,
            num_clients: 100,
            seed: 0x0CB_1997,
        }
    }
}

impl UcbLikeConfig {
    /// Paper-scale variant: the original trace's 9,244,728 requests.
    pub fn full_scale() -> Self {
        UcbLikeConfig {
            requests: 9_244_728,
            core_objects: 60_000,
            fresh_objects_per_day: 60_000,
            ..UcbLikeConfig::default()
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 || self.days == 0 {
            return Err("requests and days must be positive".into());
        }
        if self.core_objects == 0 || self.fresh_objects_per_day == 0 {
            return Err("object counts must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.core_request_fraction) {
            return Err("core_request_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.fresh_one_time_fraction) {
            return Err("fresh_one_time_fraction must be in [0,1]".into());
        }
        let per_day = self.requests / self.days;
        let core_reqs = (per_day as f64 * self.core_request_fraction) as usize;
        let fresh_reqs = per_day - core_reqs;
        if fresh_reqs < self.fresh_objects_per_day * 2 {
            return Err(format!(
                "each day needs at least 2 requests per fresh object \
                 ({} fresh requests vs {} fresh objects)",
                fresh_reqs, self.fresh_objects_per_day
            ));
        }
        if core_reqs < self.core_objects {
            // The core sub-generator addresses core_objects/2 distinct
            // multi-reference ranks, each needing >= 2 references per day.
            return Err(format!(
                "each day needs at least {} core requests (2 per distinct core rank), got {}",
                self.core_objects, core_reqs
            ));
        }
        Ok(())
    }
}

/// UCB-like trace generator. See the module docs for the model.
#[derive(Clone, Debug)]
pub struct UcbLike {
    cfg: UcbLikeConfig,
}

impl UcbLike {
    /// Creates a generator after validating `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: UcbLikeConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid UcbLikeConfig: {e}");
        }
        UcbLike { cfg }
    }

    /// Generates the trace.
    ///
    /// Object id layout: `0..core_objects` is the persistent core (in
    /// popularity-rank order); day `d` owns the id range
    /// `core + d*fresh .. core + (d+1)*fresh`.
    pub fn generate(&self) -> Trace {
        let cfg = &self.cfg;
        let per_day = cfg.requests / cfg.days;
        let core_reqs = (per_day as f64 * cfg.core_request_fraction) as usize;
        let fresh_reqs = per_day - core_reqs;

        let mut requests: Vec<Request> = Vec::with_capacity(cfg.requests);
        for day in 0..cfg.days {
            // Give the final day the remainder so totals match exactly.
            let (core_reqs, fresh_reqs) = if day + 1 == cfg.days {
                let total = cfg.requests - per_day * (cfg.days - 1);
                let c = (total as f64 * cfg.core_request_fraction) as usize;
                (c, total - c)
            } else {
                (core_reqs, fresh_reqs)
            };

            // Core stream: stable popularity (same ranks every day, fresh
            // seed so *which* requests arrive varies), low one-timer rate
            // (the core is by definition re-referenced material). The core
            // sub-universe each day is the whole core.
            let core = ProWGen::new(ProWGenConfig {
                requests: core_reqs.max(cfg.core_objects / 2),
                distinct_objects: (cfg.core_objects / 2).max(1),
                one_time_fraction: 0.0,
                zipf_alpha: cfg.zipf_alpha,
                stack_fraction: 0.5,
                num_clients: cfg.num_clients,
                size_model: SizeModel::Unit,
                seed: webcache_primitives::seed::derive_indexed(cfg.seed, "ucb-core", day as u64),
                ..ProWGenConfig::default()
            })
            .generate();
            // Map the day's dense rank ids onto stable core ids via a
            // rank-preserving stride so every day hits the same hot head.
            for r in core.requests.iter().take(core_reqs) {
                let object = (r.object as usize * 2 % cfg.core_objects) as u32;
                requests.push(Request { client: r.client, object, size: 1 });
            }

            // Fresh stream: day-local objects, heavy one-time referencing.
            let fresh = ProWGen::new(ProWGenConfig {
                requests: fresh_reqs.max(2 * cfg.fresh_objects_per_day),
                distinct_objects: cfg.fresh_objects_per_day,
                one_time_fraction: cfg.fresh_one_time_fraction,
                zipf_alpha: cfg.zipf_alpha,
                stack_fraction: 0.3,
                num_clients: cfg.num_clients,
                size_model: SizeModel::Unit,
                seed: webcache_primitives::seed::derive_indexed(cfg.seed, "ucb-fresh", day as u64),
                ..ProWGenConfig::default()
            })
            .generate();
            let base = (cfg.core_objects + day * cfg.fresh_objects_per_day) as u32;
            for r in fresh.requests.iter().take(fresh_reqs) {
                requests.push(Request { client: r.client, object: base + r.object, size: 1 });
            }

            // Interleave the day's core and fresh requests so they do not
            // arrive as two separate phases: deterministic riffle.
            let day_start = requests.len() - core_reqs - fresh_reqs;
            riffle(&mut requests[day_start..], core_reqs);
        }

        let num_objects = (cfg.core_objects + cfg.days * cfg.fresh_objects_per_day) as u32;
        Trace { requests, num_objects, num_clients: cfg.num_clients }
    }
}

/// Deterministically interleaves a slice whose first `left` elements are one
/// stream and the rest another, preserving each stream's internal order.
fn riffle(slice: &mut [Request], left: usize) {
    let right = slice.len() - left;
    if left == 0 || right == 0 {
        return;
    }
    let a: Vec<Request> = slice[..left].to_vec();
    let b: Vec<Request> = slice[left..].to_vec();
    let total = slice.len();
    let (mut ia, mut ib) = (0usize, 0usize);
    for (i, out) in slice.iter_mut().enumerate() {
        // Proportional merge: pick from `a` when its progress lags.
        let take_a = ib >= right || (ia < left && ia * total <= i * left);
        if take_a {
            *out = a[ia];
            ia += 1;
        } else {
            *out = b[ib];
            ib += 1;
        }
        let _ = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UcbLikeConfig {
        UcbLikeConfig {
            requests: 120_000,
            days: 6,
            core_objects: 2_000,
            fresh_objects_per_day: 1_500,
            ..UcbLikeConfig::default()
        }
    }

    #[test]
    fn exact_request_count() {
        let t = UcbLike::new(tiny()).generate();
        assert_eq!(t.len(), 120_000);
    }

    #[test]
    fn deterministic() {
        let a = UcbLike::new(tiny()).generate();
        let b = UcbLike::new(tiny()).generate();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn heavier_one_timers_than_default_synthetic() {
        let t = UcbLike::new(tiny()).generate();
        let s = t.stats();
        assert!(
            s.one_timer_fraction() > 0.5,
            "UCB-like should be one-timer heavy: {}",
            s.one_timer_fraction()
        );
    }

    #[test]
    fn universe_large_relative_to_infinite_cache() {
        let t = UcbLike::new(tiny()).generate();
        let s = t.stats();
        assert!(s.distinct_objects > s.infinite_cache_size * 2);
    }

    #[test]
    fn core_objects_recur_across_days() {
        let t = UcbLike::new(tiny()).generate();
        // A hot core object (id 0) should appear in most days' segments.
        let day_len = t.len() / 6;
        let mut days_seen = 0;
        for d in 0..6 {
            let seg = &t.requests[d * day_len..(d + 1) * day_len];
            if seg.iter().any(|r| r.object == 0) {
                days_seen += 1;
            }
        }
        assert!(days_seen >= 5, "hot core object seen in {days_seen}/6 days");
    }

    #[test]
    fn fresh_objects_do_not_recur() {
        let t = UcbLike::new(tiny()).generate();
        let day_len = t.len() / 6;
        // Day 0's fresh range must not appear after day 1's end (allow the
        // riffle boundary one day of slack).
        let day0_base = 2_000u32;
        let day0_end = day0_base + 1_500;
        let late = &t.requests[2 * day_len..];
        assert!(
            late.iter().all(|r| !(day0_base..day0_end).contains(&r.object)),
            "day-0 fresh objects recurred later"
        );
    }

    #[test]
    fn day_streams_interleaved() {
        let t = UcbLike::new(tiny()).generate();
        // Within day 0, core (< 2000) and fresh (>= 2000) requests must be
        // mixed, not phased: both kinds appear in each quarter of the day.
        let day_len = t.len() / 6;
        let q = day_len / 4;
        for quarter in 0..4 {
            let seg = &t.requests[quarter * q..(quarter + 1) * q];
            assert!(seg.iter().any(|r| r.object < 2_000), "no core reqs in quarter {quarter}");
            assert!(seg.iter().any(|r| r.object >= 2_000), "no fresh reqs in quarter {quarter}");
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = tiny();
        c.requests = 0;
        assert!(c.validate().is_err());
        let mut c = tiny();
        c.core_request_fraction = 2.0;
        assert!(c.validate().is_err());
        let mut c = tiny();
        c.fresh_objects_per_day = 1_000_000;
        assert!(c.validate().is_err());
        assert!(tiny().validate().is_ok());
        assert!(UcbLikeConfig::default().validate().is_ok());
        assert!(UcbLikeConfig::full_scale().validate().is_ok());
    }

    #[test]
    fn riffle_preserves_multiset_and_order() {
        let mk = |object: u32| Request { client: 0, object, size: 1 };
        let mut v: Vec<Request> = (0..10).map(mk).collect();
        riffle(&mut v, 4);
        // All elements still present.
        let mut objs: Vec<u32> = v.iter().map(|r| r.object).collect();
        objs.sort_unstable();
        assert_eq!(objs, (0..10).collect::<Vec<_>>());
        // Relative order within each stream preserved.
        let a_pos: Vec<usize> =
            (0..4).map(|o| v.iter().position(|r| r.object == o).unwrap()).collect();
        assert!(a_pos.windows(2).all(|w| w[0] < w[1]));
        let b_pos: Vec<usize> =
            (4..10).map(|o| v.iter().position(|r| r.object == o).unwrap()).collect();
        assert!(b_pos.windows(2).all(|w| w[0] < w[1]));
    }
}
