//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! stand-in: they accept any item (including `#[serde(...)]` attributes)
//! and expand to nothing.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
