//! Offline stand-in for the `rayon` crate, backed by a real
//! work-stealing thread pool.
//!
//! Provides `par_iter()` / `into_par_iter()` with `map` + `collect` on a
//! lazily-started global pool of persistent workers. Each batch is split
//! into one contiguous index range per worker; owners pop from the front
//! of their range and idle workers steal the back half of the richest
//! victim, so uneven point costs (a Hier-GD sweep point costs ~10× an NC
//! point) no longer serialize on the slowest pre-assigned chunk.
//! Collected results keep the input order, matching real rayon's indexed
//! parallel iterators, so parallel output is byte-identical to serial.
//! See `vendor/README.md`.
//!
//! Pool size is `WEBCACHE_THREADS` (if set to a positive integer) or the
//! number of available cores, read once when the pool first starts. With
//! one thread — or for nested / concurrent submissions, which fall back
//! to the submitting thread — execution is plain serial iteration.
//!
//! `unsafe` is confined to the batch plumbing: erasing the submitting
//! stack frame's lifetime from the job pointer handed to the persistent
//! workers (sound because the submitter blocks until every worker has
//! quiesced), and writing each index's item/result slot without a lock
//! (sound because deque ranges partition the indices: each index is
//! claimed exactly once).

use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, TryLockError};

/// The rayon-style glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of threads the global pool runs with (starting it if needed).
///
/// `1` means every `collect` runs serially on the calling thread.
pub fn current_num_threads() -> usize {
    global().num_threads()
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A type-erased batch job: "execute item `idx`".
type Job = &'static (dyn Fn(usize) + Sync);

/// One worker's slice of the current batch: a `[lo, hi)` index range.
///
/// The owner pops from the front; a thief splits off the back half. A
/// `Mutex` per deque (not a lock-free Chase-Lev deque) is plenty here:
/// batch items are whole cache simulations, so deque traffic is a few
/// dozen lock acquisitions per sweep, not millions.
struct Deque {
    range: Mutex<(usize, usize)>,
}

struct State {
    /// Bumped once per batch; workers run each generation exactly once.
    generation: u64,
    /// The current batch's job, while one is in flight.
    job: Option<Job>,
    /// Spawned workers still running the current batch (quiescence latch).
    active: usize,
    /// Set when any task panicked during the current batch.
    panicked: bool,
}

struct Shared {
    /// One deque per participant; slot 0 belongs to the submitter.
    deques: Vec<Deque>,
    state: Mutex<State>,
    /// Workers park here between batches.
    work: Condvar,
    /// The submitter parks here until `active` drains to zero.
    done: Condvar,
}

pub struct Pool {
    shared: Arc<Shared>,
    /// Held for the duration of a batch; `try_lock` failure means a batch
    /// is already in flight (concurrent or nested submit) → run serially.
    submit: Mutex<()>,
}

thread_local! {
    /// True on pool worker threads: a `collect` inside a task must not
    /// submit to the pool it is running on (the workers are busy), so it
    /// falls back to serial execution.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn global() -> &'static Pool {
    POOL.get_or_init(Pool::start)
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("WEBCACHE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

impl Pool {
    /// Starts the pool: `n - 1` parked worker threads plus the submitter.
    fn start() -> Pool {
        let n = configured_threads();
        let shared = Arc::new(Shared {
            deques: (0..n).map(|_| Deque { range: Mutex::new((0, 0)) }).collect(),
            state: Mutex::new(State { generation: 0, job: None, active: 0, panicked: false }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        for me in 1..n {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("webcache-worker-{me}"))
                .spawn(move || worker_loop(&shared, me))
                .expect("spawn pool worker");
        }
        Pool { shared, submit: Mutex::new(()) }
    }

    fn num_threads(&self) -> usize {
        self.shared.deques.len()
    }

    /// Runs `job(idx)` for every `idx in 0..n` across the pool, returning
    /// only once all indices have executed. Returns `false` without doing
    /// anything if the pool cannot take the batch (single-threaded pool,
    /// nested/concurrent submission) — the caller then runs serially.
    fn run_batch(&self, n: usize, job: &(dyn Fn(usize) + Sync)) -> bool {
        if self.num_threads() <= 1 || n <= 1 || IN_POOL.with(Cell::get) {
            return false;
        }
        let _guard = match self.submit.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return false,
            Err(TryLockError::Poisoned(_)) => unreachable!("submit guard never panics"),
        };

        let nw = self.num_threads();
        for (w, deque) in self.shared.deques.iter().enumerate() {
            *deque.range.lock().expect("deque poisoned") = (n * w / nw, n * (w + 1) / nw);
        }
        // SAFETY: the job outlives the batch because this function does
        // not return until every worker has decremented `active` for this
        // generation, and workers touch the job only between claiming the
        // generation and decrementing.
        let erased: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        {
            let mut st = self.shared.state.lock().expect("state poisoned");
            st.job = Some(erased);
            st.generation += 1;
            st.active = nw - 1;
            st.panicked = false;
        }
        self.shared.work.notify_all();

        // The submitter is worker 0.
        let caught = catch_unwind(AssertUnwindSafe(|| run_worker(&self.shared, 0, job)));

        let mut st = self.shared.state.lock().expect("state poisoned");
        while st.active > 0 {
            st = self.shared.done.wait(st).expect("state poisoned");
        }
        st.job = None;
        let panicked = st.panicked || caught.is_err();
        drop(st);
        if let Err(payload) = caught {
            std::panic::resume_unwind(payload);
        }
        if panicked {
            panic!("a parallel task panicked");
        }
        true
    }
}

/// A persistent worker: waits for a new generation, helps drain it,
/// signals quiescence, repeats forever (workers live for the process).
fn worker_loop(shared: &Shared, me: usize) {
    IN_POOL.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("state poisoned");
            loop {
                if st.generation != seen {
                    if let Some(job) = st.job {
                        seen = st.generation;
                        break job;
                    }
                }
                st = shared.work.wait(st).expect("state poisoned");
            }
        };
        let caught = catch_unwind(AssertUnwindSafe(|| run_worker(shared, me, job)));
        let mut st = shared.state.lock().expect("state poisoned");
        if caught.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Drains the batch from `me`'s point of view: pop the front of the own
/// deque; when empty, steal the back half of the first non-empty victim;
/// when every deque reads empty, return. (A range a thief is currently
/// re-homing is invisible to this scan, so a worker can retire while
/// items remain — harmless: the thief holding them executes them before
/// it decrements the quiescence latch.)
fn run_worker(shared: &Shared, me: usize, job: &(dyn Fn(usize) + Sync)) {
    loop {
        let idx = {
            let mut r = shared.deques[me].range.lock().expect("deque poisoned");
            if r.0 < r.1 {
                let i = r.0;
                r.0 += 1;
                Some(i)
            } else {
                None
            }
        };
        if let Some(i) = idx {
            job(i);
            continue;
        }
        let mut stolen = None;
        for (v, victim) in shared.deques.iter().enumerate() {
            if v == me {
                continue;
            }
            let mut r = victim.range.lock().expect("deque poisoned");
            let len = r.1 - r.0;
            if len == 0 {
                continue;
            }
            let take = len.div_ceil(2);
            r.1 -= take;
            stolen = Some((r.1, r.1 + take));
            break;
        }
        match stolen {
            Some(range) => {
                *shared.deques[me].range.lock().expect("deque poisoned") = range;
            }
            None => return,
        }
    }
}

// ---------------------------------------------------------------------------
// The iterator facade
// ---------------------------------------------------------------------------

/// A to-be-mapped batch of items (the stand-in's "parallel iterator").
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped batch, evaluated in parallel on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item; evaluation happens at `collect` time.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// Per-index in/out slots shared across workers without a lock.
///
/// SAFETY (of the `Sync` impl): every index is claimed by exactly one
/// worker — deque ranges partition `0..n` and steals move whole
/// sub-ranges — so no slot is ever touched from two threads.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T: Send> Slots<T> {
    /// Moves slot `idx`'s value out. SAFETY: callers claim each index at
    /// most once (closures must capture the whole `Slots`, not its field,
    /// so the `Sync` bound above is what crosses threads).
    fn take(&self, idx: usize) -> T {
        unsafe { (*self.0[idx].get()).take() }.expect("index claimed once")
    }

    /// Fills slot `idx`. SAFETY: same single-claimant contract as `take`.
    fn put(&self, idx: usize, value: T) {
        unsafe { *self.0[idx].get() = Some(value) };
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluates the map across the pool and collects the results in
    /// input order (byte-identical to a serial run at any thread count).
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let f = &self.f;
        let input = Slots(self.items.into_iter().map(|t| UnsafeCell::new(Some(t))).collect());
        let output: Slots<R> = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
        let task = |idx: usize| output.put(idx, f(input.take(idx)));
        if !global().run_batch(n, &task) {
            for idx in 0..n {
                task(idx);
            }
        }
        output.0.into_iter().map(|c| c.into_inner().expect("all indices executed")).collect()
    }
}

/// Owned conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consumes `self` into a parallel batch.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowed conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced by the iterator (a reference).
    type Item: Send;

    /// Borrows `self` as a parallel batch.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let squares: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == (i as u64) * (i as u64)));

        let doubled: Vec<u64> = xs.into_par_iter().map(|x| x * 2).collect();
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == 2 * i as u64));
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.into_par_iter().map(|x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let before = crate::current_num_threads();
        for _ in 0..10 {
            let xs: Vec<u32> = (0..257).collect();
            let ys: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
            assert_eq!(ys[256], 257);
        }
        assert_eq!(crate::current_num_threads(), before);
    }

    #[test]
    fn nested_collect_falls_back_to_serial() {
        let outer: Vec<u32> = (0..8).collect();
        let sums: Vec<u32> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u32> = (0..100).collect();
                let mapped: Vec<u32> = inner.into_par_iter().map(|i| i + o).collect();
                mapped.iter().sum()
            })
            .collect();
        for (o, &s) in sums.iter().enumerate() {
            assert_eq!(s, (0..100u32).sum::<u32>() + 100 * o as u32);
        }
    }

    #[test]
    fn uneven_task_costs_still_order_correctly() {
        // Front-loaded costs force steals when more than one worker runs.
        let xs: Vec<u64> = (0..64).collect();
        let ys: Vec<u64> = xs
            .into_par_iter()
            .map(|x| {
                let spins = if x < 8 { 200_000 } else { 10 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                // Keep the spin's result live without affecting the
                // order-sensitive return value.
                std::hint::black_box(acc);
                x * 3
            })
            .collect();
        assert!(ys.iter().enumerate().all(|(i, &y)| y == 3 * i as u64));
    }
}
