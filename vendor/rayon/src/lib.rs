//! Offline stand-in for the `rayon` crate.
//!
//! Provides `par_iter()` / `into_par_iter()` with `map` + `collect`,
//! executed on `std::thread::scope` with one worker per available core.
//! Collected results keep the input order, matching real rayon's indexed
//! parallel iterators. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// The rayon-style glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// A to-be-mapped batch of items (the stand-in's "parallel iterator").
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped batch, evaluated in parallel on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item; evaluation happens at `collect` time.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluates the map across all available cores and collects the
    /// results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let workers =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
        if workers <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }

        let queue: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(self.items.into_iter().enumerate().collect());
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = queue.lock().expect("queue poisoned").pop_front();
                    match job {
                        Some((idx, item)) => {
                            let out = f(item);
                            results.lock().expect("results poisoned").push((idx, out));
                        }
                        None => break,
                    }
                });
            }
        });

        let mut results = results.into_inner().expect("results poisoned");
        results.sort_by_key(|&(idx, _)| idx);
        results.into_iter().map(|(_, r)| r).collect()
    }
}

/// Owned conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consumes `self` into a parallel batch.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowed conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced by the iterator (a reference).
    type Item: Send;

    /// Borrows `self` as a parallel batch.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let squares: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == (i as u64) * (i as u64)));

        let doubled: Vec<u64> = xs.into_par_iter().map(|x| x * 2).collect();
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == 2 * i as u64));
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.into_par_iter().map(|x| x).collect();
        assert!(ys.is_empty());
    }
}
