//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.9 API this workspace uses:
//! [`RngCore`], [`Rng`] (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`] (xoshiro256++).
//! Streams are deterministic for a given seed but are not bit-compatible
//! with upstream `rand`. See `vendor/README.md`.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an [`RngCore`]'s output.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (same construction as
    /// upstream rand's `StandardUniform` for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait RangeSample: Sized {
    /// Draws one value uniformly from `[range.start, range.end)`.
    ///
    /// Panics when the range is empty, like upstream rand.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample_small {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Widening multiply maps 64 random bits onto [0, span).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}
impl_range_sample_small!(u8, u16, u32, u64, usize);

impl RangeSample for u128 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end - range.start;
        range.start + u128::sample_standard(rng) % span
    }
}

macro_rules! impl_range_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u);
                let off = <$u>::sample_range(rng, 0..span);
                range.start.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_range_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl RangeSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

impl RangeSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from a half-open range.
    fn random_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream (the same byte
    /// fill rand_core documents for its default `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (same algorithm family upstream
    /// `SmallRng` uses on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.random_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&z));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
