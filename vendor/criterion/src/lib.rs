//! Offline stand-in for the `criterion` crate: times each benchmark with
//! `std::time::Instant` and reports mean/median ns per iteration on stderr.
//! No warm-up modelling, outlier analysis, or HTML reports. See
//! `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stand-in prints
    /// as it goes, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed call to warm caches and page in code.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("bench {name:<40} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    eprintln!("bench {name:<40} median {median:>12.0} ns/iter  mean {mean:>12.0} ns/iter");
}

/// Declares a group of benchmark functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
