//! Offline stand-in for the `proptest` crate: a miniature property-testing
//! engine covering the surface this workspace uses.
//!
//! Differences from upstream: random search only (no shrinking, no
//! persistence files); the RNG seed is derived deterministically from the
//! test name, so runs are reproducible. Failures report the sampled inputs
//! verbatim. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Run-time configuration for one `proptest!` test function.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

/// Deterministic RNG driving input generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ 0x9E3779B97F4A7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end - self.start;
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + raw % span
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident : $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`prelude::any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..300)`: a vector of 1..300 elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{Any, Arbitrary, ProptestConfig, Strategy, TestCaseError};

    /// The canonical strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Declares property-based test functions.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by one or more
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            // The attempt cap bounds prop_assume!-heavy tests.
            while __passed < __config.cases && __attempts < __config.cases.saturating_mul(16) {
                __attempts += 1;
                let mut __inputs: ::std::vec::Vec<::std::string::String> = ::std::vec::Vec::new();
                $(
                    let __value = $crate::Strategy::sample(&($strat), &mut __rng);
                    __inputs.push(format!("{} = {:?}", stringify!($pat), &__value));
                    let $pat = __value;
                )+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed after {} case(s): {}\ninputs:\n  {}",
                            stringify!($name),
                            __passed,
                            __msg,
                            __inputs.join("\n  ")
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i64..9, f in 0.25f64..0.75) {
            crate::prop_assert!((3..17).contains(&x));
            crate::prop_assert!((-4..9).contains(&y));
            crate::prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(ops in crate::collection::vec((0u64..30, 1u32..20), 1..50)) {
            crate::prop_assert!(!ops.is_empty() && ops.len() < 50);
            for (k, c) in ops {
                crate::prop_assert!(k < 30);
                crate::prop_assert!((1..20).contains(&c));
            }
        }
    }

    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(8))]
        #[test]
        fn config_and_assume(v in crate::collection::vec(crate::prelude::any::<bool>(), 0..6)) {
            crate::prop_assume!(!v.is_empty());
            crate::prop_assert!(v.len() < 6);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_inputs() {
        crate::__proptest_fns! {
            config = (crate::ProptestConfig::with_cases(4));
            fn always_fails(x in 0u64..10) {
                crate::prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
