//! Offline stand-in for the `serde` crate.
//!
//! Nothing in this workspace serializes through serde at runtime (all JSON
//! and CSV output is hand-rolled), so the `#[derive(Serialize, Deserialize)]`
//! annotations only need to *parse*. This crate re-exports no-op derive
//! macros that expand to nothing. See `vendor/README.md`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
