//! Offline stand-in for the `rand_chacha` crate: a real ChaCha8 core
//! (RFC 7539 block function with 8 rounds) behind the [`rand`] traits.
//!
//! Deterministic per seed; not bit-compatible with upstream `rand_chacha`
//! (word-consumption order differs). See `vendor/README.md`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit block counter, zero nonce.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and counter words 12..14 of the ChaCha state.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *b = w.wrapping_add(*s);
        }
        // Advance the 64-bit block counter (words 12 and 13).
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and nonce words start at zero.
        ChaCha8Rng { state, block: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn blocks_differ() {
        // 16 words per block: draws 0..8 and 8..16 come from different blocks.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u64> = (0..8).map(|_| rng.random()).collect();
        let second: Vec<u64> = (0..8).map(|_| rng.random()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
